//! Blocking client for the solve service.
//!
//! One [`Client`] wraps one TCP connection and issues strictly
//! sequential request/response exchanges. Correlation ids are assigned
//! automatically and verified on every reply, so a cross-wired or
//! out-of-order response surfaces as [`ClientError::Protocol`] instead
//! of silently corrupting results.

use crate::protocol::{Request, Response, SolveReply, StatsReply};
use atsched_core::instance::Instance;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, read, or write).
    Io(io::Error),
    /// The server broke the wire protocol (closed mid-exchange, sent an
    /// unparseable frame, or echoed the wrong correlation id).
    Protocol(String),
    /// The server answered with a typed error frame.
    Service {
        /// One of the [`kind`](crate::protocol::kind) constants.
        kind: String,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Service { kind, message } => {
                write!(f, "service error ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Map service failures onto the library's error type so embedders can
/// swap a local [`Solve`](nested_active_time::Solve) for a remote call
/// without changing their error handling.
impl From<ClientError> for nested_active_time::Error {
    fn from(e: ClientError) -> Self {
        use crate::protocol::kind;
        use nested_active_time::Error;
        match e {
            ClientError::Io(io) => Error::Protocol(format!("connection error: {io}")),
            ClientError::Protocol(msg) => Error::Protocol(msg),
            ClientError::Service { kind, message } => match kind.as_str() {
                kind::OVERLOADED => Error::Overloaded,
                kind::SHUTTING_DOWN => Error::ShuttingDown,
                kind::INFEASIBLE => Error::Infeasible,
                kind::TIMED_OUT => Error::TimedOut,
                kind::FAILED | kind::INTERNAL => Error::Panicked(message),
                _ => Error::Protocol(format!("{kind}: {message}")),
            },
        }
    }
}

/// A blocking connection to a solve server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, next_id: 1 })
    }

    /// Set (or with `None` clear) the socket read timeout — a safety
    /// net against a hung server rather than a solve deadline; prefer
    /// [`Request::with_timeout_ms`] for deadlines.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Send one request and wait for its response frame. A correlation
    /// id is assigned when the request has none; the reply's echo is
    /// verified. Error frames are returned as `Ok` — use the typed
    /// helpers for `Result`-shaped calls.
    pub fn request(&mut self, mut req: Request) -> Result<Response, ClientError> {
        let id = *req.id.get_or_insert_with(|| {
            let id = self.next_id;
            self.next_id += 1;
            id
        });
        let mut line = serde_json::to_string(&req)
            .map_err(|e| ClientError::Protocol(format!("request does not serialize: {e}")))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;

        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let resp: Response = serde_json::from_str(reply.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response frame: {e}")))?;
        // `id: null` only happens when the server could not recover an id
        // from our frame; anything else must echo ours.
        if let Some(echoed) = resp.id {
            if echoed != id {
                return Err(ClientError::Protocol(format!(
                    "response id {echoed} does not match request id {id}"
                )));
            }
        }
        Ok(resp)
    }

    fn expect_ok(&mut self, req: Request) -> Result<Response, ClientError> {
        let resp = self.request(req)?;
        match resp.error {
            Some(err) => Err(ClientError::Service { kind: err.kind, message: err.message }),
            None => Ok(resp),
        }
    }

    /// Solve one instance with server defaults; see [`solve`](Self::solve)
    /// to control method, backend, seed, or deadline.
    pub fn solve_instance(&mut self, inst: &Instance) -> Result<SolveReply, ClientError> {
        self.solve(Request::solve(inst))
    }

    /// Issue a prepared `solve` request (built via [`Request::solve`]
    /// and its `with_*` helpers).
    pub fn solve(&mut self, req: Request) -> Result<SolveReply, ClientError> {
        let resp = self.expect_ok(req)?;
        resp.solve.ok_or_else(|| ClientError::Protocol("ok response without solve payload".into()))
    }

    /// Solve a list of instances through the server's batch engine.
    pub fn batch(
        &mut self,
        instances: &[Instance],
    ) -> Result<crate::protocol::BatchReply, ClientError> {
        let resp = self.expect_ok(Request::batch(instances))?;
        resp.batch.ok_or_else(|| ClientError::Protocol("ok response without batch payload".into()))
    }

    /// Fetch the server's current stats snapshot.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        let resp = self.expect_ok(Request::stats())?;
        resp.stats.ok_or_else(|| ClientError::Protocol("ok response without stats payload".into()))
    }

    /// Liveness probe; `Err(Service { kind: "shutting_down", .. })` once
    /// the server is draining.
    pub fn health(&mut self) -> Result<(), ClientError> {
        self.expect_ok(Request::health()).map(|_| ())
    }

    /// Ask the server to drain and return its final stats snapshot.
    /// Blocks until every admitted request has been answered.
    pub fn shutdown(&mut self) -> Result<StatsReply, ClientError> {
        let resp = self.expect_ok(Request::shutdown())?;
        resp.stats.ok_or_else(|| ClientError::Protocol("shutdown ack without snapshot".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::kind;
    use nested_active_time::Error;

    #[test]
    fn service_errors_map_onto_library_errors() {
        let svc = |k: &str| ClientError::Service { kind: k.into(), message: "m".into() };
        assert!(matches!(Error::from(svc(kind::OVERLOADED)), Error::Overloaded));
        assert!(matches!(Error::from(svc(kind::SHUTTING_DOWN)), Error::ShuttingDown));
        assert!(matches!(Error::from(svc(kind::INFEASIBLE)), Error::Infeasible));
        assert!(matches!(Error::from(svc(kind::TIMED_OUT)), Error::TimedOut));
        assert!(matches!(Error::from(svc(kind::FAILED)), Error::Panicked(_)));
        assert!(matches!(Error::from(svc(kind::BAD_REQUEST)), Error::Protocol(_)));
        assert!(matches!(Error::from(ClientError::Protocol("x".into())), Error::Protocol(_)));
    }

    #[test]
    fn display_formats_are_informative() {
        let err = ClientError::Service { kind: "overloaded".into(), message: "queue full".into() };
        assert_eq!(err.to_string(), "service error (overloaded): queue full");
        assert!(ClientError::Protocol("bad frame".into()).to_string().contains("bad frame"));
    }
}
