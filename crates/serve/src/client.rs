//! Blocking client for the solve service.
//!
//! One [`Client`] wraps one TCP connection and issues strictly
//! sequential request/response exchanges. Correlation ids are assigned
//! automatically and verified on every reply, so a cross-wired or
//! out-of-order response surfaces as [`ClientError::Protocol`] instead
//! of silently corrupting results.

use crate::protocol::{DeltaSpec, Request, Response, SolveReply, StatsReply};
use atsched_core::instance::Instance;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Extra wall-clock allowed beyond a request's own deadline before the
/// socket read gives up — covers queueing, serialization, and network
/// overhead on top of the server-side solve budget.
pub const READ_TIMEOUT_SLACK: Duration = Duration::from_secs(2);

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, read, or write).
    Io(io::Error),
    /// The server accepted the connection but did not reply within the
    /// socket read timeout. The connection is left in an unknown state —
    /// a late reply would desynchronize correlation ids — so drop the
    /// client and reconnect.
    Timeout,
    /// The server broke the wire protocol (closed mid-exchange, sent an
    /// unparseable frame, or echoed the wrong correlation id).
    Protocol(String),
    /// The server answered with a typed error frame.
    Service {
        /// One of the [`kind`](crate::protocol::kind) constants.
        kind: String,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Timeout => {
                write!(f, "timed out waiting for the server's reply; reconnect before retrying")
            }
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Service { kind, message } => {
                write!(f, "service error ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Map service failures onto the library's error type so embedders can
/// swap a local [`Solve`](nested_active_time::Solve) for a remote call
/// without changing their error handling.
impl From<ClientError> for nested_active_time::Error {
    fn from(e: ClientError) -> Self {
        use crate::protocol::kind;
        use nested_active_time::Error;
        match e {
            ClientError::Io(io) => Error::Protocol(format!("connection error: {io}")),
            ClientError::Timeout => Error::TimedOut,
            ClientError::Protocol(msg) => Error::Protocol(msg),
            ClientError::Service { kind, message } => match kind.as_str() {
                kind::OVERLOADED => Error::Overloaded,
                kind::SHUTTING_DOWN => Error::ShuttingDown,
                kind::INFEASIBLE => Error::Infeasible,
                kind::TIMED_OUT => Error::TimedOut,
                kind::FAILED | kind::INTERNAL => Error::Panicked(message),
                _ => Error::Protocol(format!("{kind}: {message}")),
            },
        }
    }
}

/// A blocking connection to a solve server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// `true` once the caller picked a read timeout (including `None`)
    /// via [`set_read_timeout`](Self::set_read_timeout); the per-request
    /// deadline-derived default then stays out of the way.
    explicit_timeout: bool,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, next_id: 1, explicit_timeout: false })
    }

    /// Set (or with `None` clear) the socket read timeout — a safety
    /// net against a hung server rather than a solve deadline; prefer
    /// [`Request::with_timeout_ms`] for deadlines.
    ///
    /// Calling this (even with `None`) disables the automatic default:
    /// otherwise, requests carrying a deadline get a read timeout of the
    /// deadline plus [`READ_TIMEOUT_SLACK`], so a server that accepts
    /// and then hangs surfaces as [`ClientError::Timeout`] instead of
    /// blocking the caller forever.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        self.explicit_timeout = true;
        Ok(())
    }

    /// Send one request and wait for its response frame. A correlation
    /// id is assigned when the request has none; the reply's echo is
    /// verified. Error frames are returned as `Ok` — use the typed
    /// helpers for `Result`-shaped calls.
    pub fn request(&mut self, mut req: Request) -> Result<Response, ClientError> {
        let id = *req.id.get_or_insert_with(|| {
            let id = self.next_id;
            self.next_id += 1;
            id
        });
        let mut line = serde_json::to_string(&req)
            .map_err(|e| ClientError::Protocol(format!("request does not serialize: {e}")))?;
        line.push('\n');
        // Bound the wait for the reply by the request's own deadline
        // (plus slack) unless the caller took over timeout management.
        // Requests without a deadline keep the previous behavior of
        // waiting indefinitely.
        if !self.explicit_timeout {
            let net = req.timeout_ms.map(|ms| Duration::from_millis(ms) + READ_TIMEOUT_SLACK);
            self.writer.set_read_timeout(net)?;
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;

        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).map_err(|e| match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout,
            _ => ClientError::Io(e),
        })?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let resp: Response = serde_json::from_str(reply.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response frame: {e}")))?;
        // `id: null` only happens when the server could not recover an id
        // from our frame; anything else must echo ours.
        if let Some(echoed) = resp.id {
            if echoed != id {
                return Err(ClientError::Protocol(format!(
                    "response id {echoed} does not match request id {id}"
                )));
            }
        }
        Ok(resp)
    }

    fn expect_ok(&mut self, req: Request) -> Result<Response, ClientError> {
        let resp = self.request(req)?;
        match resp.error {
            Some(err) => Err(ClientError::Service { kind: err.kind, message: err.message }),
            None => Ok(resp),
        }
    }

    /// Solve one instance with server defaults; see [`solve`](Self::solve)
    /// to control method, backend, seed, or deadline.
    pub fn solve_instance(&mut self, inst: &Instance) -> Result<SolveReply, ClientError> {
        self.solve(Request::solve(inst))
    }

    /// Issue a prepared `solve` request (built via [`Request::solve`]
    /// and its `with_*` helpers).
    pub fn solve(&mut self, req: Request) -> Result<SolveReply, ClientError> {
        let resp = self.expect_ok(req)?;
        resp.solve.ok_or_else(|| ClientError::Protocol("ok response without solve payload".into()))
    }

    /// Solve a list of instances through the server's batch engine.
    pub fn batch(
        &mut self,
        instances: &[Instance],
    ) -> Result<crate::protocol::BatchReply, ClientError> {
        let resp = self.expect_ok(Request::batch(instances))?;
        resp.batch.ok_or_else(|| ClientError::Protocol("ok response without batch payload".into()))
    }

    /// Fetch the server's current stats snapshot.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        let resp = self.expect_ok(Request::stats())?;
        resp.stats.ok_or_else(|| ClientError::Protocol("ok response without stats payload".into()))
    }

    /// Fetch the Prometheus-style text exposition of the server's
    /// metric registry (the `metrics` verb over the protocol port; the
    /// same text an HTTP scraper gets from `metrics_addr`).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let resp = self.expect_ok(Request::metrics())?;
        resp.metrics
            .ok_or_else(|| ClientError::Protocol("ok response without metrics payload".into()))
    }

    /// Liveness probe; `Err(Service { kind: "shutting_down", .. })` once
    /// the server is draining.
    pub fn health(&mut self) -> Result<(), ClientError> {
        self.expect_ok(Request::health()).map(|_| ())
    }

    /// Ask the server to drain and return its final stats snapshot.
    /// Blocks until every admitted request has been answered.
    pub fn shutdown(&mut self) -> Result<StatsReply, ClientError> {
        let resp = self.expect_ok(Request::shutdown())?;
        resp.stats.ok_or_else(|| ClientError::Protocol("shutdown ack without snapshot".into()))
    }

    /// Open an incremental session on an instance (protocol v2); returns
    /// the session id plus the initial solve. Pass a request built via
    /// [`Request::open`] to [`request`](Self::request) directly for
    /// per-call options.
    pub fn open(&mut self, inst: &Instance) -> Result<(u64, SolveReply), ClientError> {
        let resp = self.expect_ok(Request::open(inst))?;
        let session = resp
            .session
            .ok_or_else(|| ClientError::Protocol("open response without session id".into()))?;
        let reply = resp
            .solve
            .ok_or_else(|| ClientError::Protocol("ok response without solve payload".into()))?;
        Ok((session, reply))
    }

    /// Amend an open session and return the incremental re-solve.
    pub fn amend(&mut self, session: u64, delta: &DeltaSpec) -> Result<SolveReply, ClientError> {
        let resp = self.expect_ok(Request::amend(session, delta))?;
        resp.solve.ok_or_else(|| ClientError::Protocol("ok response without solve payload".into()))
    }

    /// Close an open session, releasing its server-side cached state.
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        self.expect_ok(Request::close(session)).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::kind;
    use nested_active_time::Error;

    #[test]
    fn service_errors_map_onto_library_errors() {
        let svc = |k: &str| ClientError::Service { kind: k.into(), message: "m".into() };
        assert!(matches!(Error::from(svc(kind::OVERLOADED)), Error::Overloaded));
        assert!(matches!(Error::from(svc(kind::SHUTTING_DOWN)), Error::ShuttingDown));
        assert!(matches!(Error::from(svc(kind::INFEASIBLE)), Error::Infeasible));
        assert!(matches!(Error::from(svc(kind::TIMED_OUT)), Error::TimedOut));
        assert!(matches!(Error::from(svc(kind::FAILED)), Error::Panicked(_)));
        assert!(matches!(Error::from(svc(kind::BAD_REQUEST)), Error::Protocol(_)));
        assert!(matches!(Error::from(ClientError::Protocol("x".into())), Error::Protocol(_)));
        assert!(matches!(Error::from(ClientError::Timeout), Error::TimedOut));
    }

    /// Accept one connection, read the request, and never reply.
    /// Returns the address plus a guard that keeps the socket open.
    fn silent_server() -> (std::net::SocketAddr, std::thread::JoinHandle<TcpStream>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let guard = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = std::io::Read::read(&mut sock, &mut buf);
            sock
        });
        (addr, guard)
    }

    #[test]
    fn explicit_read_timeout_fires_against_a_silent_server() {
        use atsched_core::instance::{Instance, Job};
        let (addr, _guard) = silent_server();
        let mut client = Client::connect(addr).unwrap();
        client.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
        let inst = Instance::new(2, vec![Job::new(0, 2, 1)]).unwrap();
        let err = client.solve_instance(&inst).unwrap_err();
        assert!(matches!(err, ClientError::Timeout), "got {err:?}");
    }

    #[test]
    fn request_deadline_bounds_the_socket_wait_by_default() {
        use atsched_core::instance::{Instance, Job};
        let (addr, _guard) = silent_server();
        let mut client = Client::connect(addr).unwrap();
        let inst = Instance::new(2, vec![Job::new(0, 2, 1)]).unwrap();
        // No set_read_timeout call: the 10 ms request deadline plus the
        // slack becomes the socket timeout, so this returns instead of
        // hanging forever (the pre-fix behavior).
        let start = std::time::Instant::now();
        let err = client.solve(Request::solve(&inst).with_timeout_ms(10)).unwrap_err();
        assert!(matches!(err, ClientError::Timeout), "got {err:?}");
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(10), "timed out too early: {waited:?}");
        assert!(
            waited < READ_TIMEOUT_SLACK + Duration::from_secs(8),
            "timed out far too late: {waited:?}"
        );
    }

    #[test]
    fn display_formats_are_informative() {
        let err = ClientError::Service { kind: "overloaded".into(), message: "queue full".into() };
        assert_eq!(err.to_string(), "service error (overloaded): queue full");
        assert!(ClientError::Protocol("bad frame".into()).to_string().contains("bad frame"));
    }
}
