//! The threaded TCP solve server.
//!
//! Architecture (everything on `std::net` + threads, no async runtime):
//!
//! ```text
//!            accept loop (nonblocking poll, stops on drain)
//!                │ one thread per connection
//!                ▼
//!   connection handler ── read frame ── parse ── validate
//!        │                                  │
//!        │ stats/health/shutdown            │ solve/batch
//!        ▼                                  ▼
//!   answered inline            AdmissionQueue::try_push ──full──▶ `overloaded`
//!                                           │
//!                              worker pool (shared Engine + cache)
//!                                           │ per-request deadline
//!                                           ▼
//!                              reply channel ──▶ handler writes frame
//! ```
//!
//! Request/response is strictly sequential per connection: a handler
//! reads the next frame only after writing the previous response, so
//! replies can never cross-wire. Parallelism comes from concurrent
//! connections feeding one bounded queue.

use crate::admission::{AdmissionQueue, Admit};
use crate::protocol::{
    kind, verb, BatchItemReply, BatchReply, DeltaSpec, Request, Response, SolveReply,
    PROTOCOL_VERSION,
};
use crate::shutdown::ShutdownGate;
use crate::stats::ServerMetrics;
use atsched_core::instance::Instance;
use atsched_core::solver::{LpBackend, SolverOptions};
use atsched_engine::{with_budget, Engine, EngineConfig, Interrupt, Outcome, SessionId};
use crossbeam::channel;
use nested_active_time::{Error, Method, Solve};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration (builder-style).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Solver worker threads; `0` means one per available core.
    pub workers: usize,
    /// Admission-queue depth — the load-shedding threshold; `0` means
    /// `2 × workers`.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not set `timeout_ms`;
    /// `None` disables the default cap.
    pub default_timeout: Option<Duration>,
    /// Maximum accepted request-frame length; longer lines get a
    /// `bad_request` response and are skipped (the connection survives).
    pub max_line_bytes: usize,
    /// Artificial delay before each admitted request is executed.
    /// Load-testing aid (lets tests saturate the queue
    /// deterministically); keep `0` in production.
    pub delay_ms: u64,
    /// Idle time after which an open session is evicted. Eviction is
    /// lazy — swept on the next session verb — so an expired session
    /// costs memory only until someone touches the session table.
    pub session_ttl: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7411".into(),
            workers: 0,
            queue_depth: 0,
            default_timeout: Some(Duration::from_secs(30)),
            max_line_bytes: 1 << 20,
            delay_ms: 0,
            session_ttl: Duration::from_secs(15 * 60),
        }
    }
}

impl ServerConfig {
    /// Set the listen address.
    pub fn addr(mut self, addr: &str) -> Self {
        self.addr = addr.to_string();
        self
    }

    /// Set the worker count (`0` = one per core).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Set the admission-queue depth (`0` = `2 × workers`).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Set (or with `None` disable) the default per-request deadline.
    pub fn default_timeout(mut self, budget: Option<Duration>) -> Self {
        self.default_timeout = budget;
        self
    }

    /// Set the artificial pre-execution delay (load-testing aid).
    pub fn delay_ms(mut self, ms: u64) -> Self {
        self.delay_ms = ms;
        self
    }

    /// Set the session idle TTL.
    pub fn session_ttl(mut self, ttl: Duration) -> Self {
        self.session_ttl = ttl;
        self
    }

    fn effective_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    }

    fn effective_queue_depth(&self) -> usize {
        if self.queue_depth != 0 {
            return self.queue_depth;
        }
        2 * self.effective_workers()
    }
}

/// A validated unit of admitted work.
#[derive(Debug)]
enum Work {
    Solve {
        inst: Instance,
        method: Method,
        opts: SolverOptions,
        seed: Option<u64>,
        timeout: Option<Duration>,
        include_schedule: bool,
    },
    Batch {
        instances: Vec<Instance>,
        opts: SolverOptions,
        timeout: Option<Duration>,
    },
    Open {
        inst: Instance,
        opts: SolverOptions,
        timeout: Option<Duration>,
        include_schedule: bool,
    },
    Amend {
        session: u64,
        delta: DeltaSpec,
        timeout: Option<Duration>,
        include_schedule: bool,
    },
}

/// A queued request: validated work plus its reply path.
struct Job {
    id: Option<u64>,
    work: Work,
    reply: channel::Sender<Response>,
    admitted: Instant,
}

/// Everything shared between the accept loop, connection handlers, and
/// workers.
struct Shared {
    cfg: ServerConfig,
    engine: Engine,
    queue: AdmissionQueue<Job>,
    metrics: ServerMetrics,
    gate: ShutdownGate,
    started: Instant,
    conns: Mutex<Vec<(TcpStream, JoinHandle<()>)>>,
    /// Wire-visible sessions: engine session id → last touch. The
    /// engine's own table holds the solve state; this layer only adds
    /// the idle-TTL policy.
    sessions: Mutex<HashMap<u64, Instant>>,
}

/// A bound (but not yet running) solve server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Join handle for a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    join: JoinHandle<io::Result<crate::protocol::StatsReply>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the server to drain and return its final snapshot.
    pub fn join(self) -> io::Result<crate::protocol::StatsReply> {
        self.join.join().unwrap_or_else(|_| Err(io::Error::other("server thread panicked")))
    }
}

impl Server {
    /// Bind the listen socket; the server starts serving on
    /// [`run`](Server::run) / [`spawn`](Server::spawn).
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.effective_workers();
        let queue = AdmissionQueue::new(cfg.effective_queue_depth());
        // One registry shared by server-level counters and the engine's
        // solver instrumentation: the `stats` verb snapshots both.
        let registry = Arc::new(atsched_obs::Registry::new());
        let engine =
            Engine::with_registry(EngineConfig::default().workers(workers), Arc::clone(&registry));
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                cfg,
                engine,
                queue,
                metrics: ServerMetrics::new(registry),
                gate: ShutdownGate::default(),
                started: Instant::now(),
                conns: Mutex::new(Vec::new()),
                sessions: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until a `shutdown` request drains the server; returns the
    /// final stats snapshot.
    pub fn run(self) -> io::Result<crate::protocol::StatsReply> {
        let Server { listener, addr: _, shared } = self;
        listener.set_nonblocking(true)?;

        let workers: Vec<JoinHandle<()>> = (0..shared.cfg.effective_workers())
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        while !shared.gate.is_draining() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    let reader = match stream.try_clone() {
                        Ok(clone) => clone,
                        Err(_) => continue, // connection unusable; drop it
                    };
                    let handler = {
                        let shared = Arc::clone(&shared);
                        thread::spawn(move || connection_loop(&shared, reader))
                    };
                    shared.conns.lock().expect("conns lock").push((stream, handler));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    // Transient accept failure (e.g. per-connection
                    // resource limits); keep serving.
                    thread::sleep(Duration::from_millis(10));
                }
            }
        }
        drop(listener); // stop accepting

        // Drain: the queue is already closed (the shutdown handler did
        // it); workers exit once every admitted request is answered.
        shared.queue.close();
        for worker in workers {
            let _ = worker.join();
        }

        let snapshot =
            shared.metrics.snapshot(&shared.engine, shared.started, 0, shared.queue.capacity());
        // Hand the snapshot to the waiting `shutdown` requester and give
        // it a moment to write the response before teardown.
        shared.gate.resolve(snapshot.clone(), Duration::from_secs(5));

        // Unblock idle readers; handlers see EOF and exit.
        let conns = std::mem::take(&mut *shared.conns.lock().expect("conns lock"));
        for (stream, _) in &conns {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, handler) in conns {
            let _ = handler.join();
        }
        Ok(snapshot)
    }

    /// Run on a background thread (tests, embedding).
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let join = thread::spawn(move || self.run());
        ServerHandle { addr, join }
    }
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

/// One frame read off a connection.
enum Frame {
    /// A complete line (without the terminator).
    Line(String),
    /// A line that broke the framing rules; the reason goes into the
    /// `bad_request` response. The connection stays usable.
    Malformed(&'static str),
    /// Peer closed (or the socket died).
    Eof,
}

/// Read one `\n`-terminated frame, enforcing `max` bytes. Oversized
/// lines are consumed to their terminator (so the stream stays in sync)
/// but reported as [`Frame::Malformed`] — one bad line poisons one
/// request, never the connection.
fn read_frame(reader: &mut impl BufRead, max: usize) -> io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Ok(Frame::Eof),
        };
        if chunk.is_empty() {
            // EOF: a final unterminated line is still a frame.
            if buf.is_empty() && !oversized {
                return Ok(Frame::Eof);
            }
            break;
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !oversized {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                reader.consume(pos + 1);
                break;
            }
            None => {
                let len = chunk.len();
                if !oversized {
                    buf.extend_from_slice(chunk);
                }
                reader.consume(len);
            }
        }
        if buf.len() > max {
            oversized = true;
            buf.clear();
        }
    }
    if oversized || buf.len() > max {
        return Ok(Frame::Malformed("request line exceeds the frame size limit"));
    }
    if buf.last() == Some(&b'\r') {
        buf.pop(); // tolerate CRLF clients
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Frame::Line(line)),
        Err(_) => Ok(Frame::Malformed("request line is not valid UTF-8")),
    }
}

/// Wire frame sent when a response fails to serialize. Static so it
/// cannot itself fail, and shaped like any other error [`Response`] so
/// clients need no special handling.
const SERIALIZE_FALLBACK_FRAME: &str = concat!(
    r#"{"id":null,"status":"error","error":"#,
    r#"{"kind":"internal","message":"response serialization failed"}}"#,
);

/// Encode one response as a newline-terminated frame.
///
/// A response that fails to serialize must not take the connection (or
/// the server) down with it: the failure is counted under
/// `serve.serialize_errors` and a static `internal` error frame goes
/// out in its place, keeping the request/reply cadence intact.
fn encode_frame<T: serde::ser::Serialize>(resp: &T, metrics: &ServerMetrics) -> String {
    let mut line = match serde_json::to_string(resp) {
        Ok(line) => line,
        Err(_) => {
            metrics.serialize_error();
            SERIALIZE_FALLBACK_FRAME.to_string()
        }
    };
    line.push('\n');
    line
}

fn write_frame(stream: &mut TcpStream, metrics: &ServerMetrics, resp: &Response) -> io::Result<()> {
    let line = encode_frame(resp, metrics);
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn connection_loop(shared: &Shared, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    while let Ok(frame) = read_frame(&mut reader, shared.cfg.max_line_bytes) {
        let line = match frame {
            Frame::Eof => break,
            Frame::Malformed(reason) => {
                shared.metrics.frame_received();
                shared.metrics.bad_request();
                let resp = Response::error(None, None, kind::BAD_REQUEST, reason.to_string());
                if write_frame(&mut writer, &shared.metrics, &resp).is_err() {
                    break;
                }
                continue;
            }
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        shared.metrics.frame_received();
        let req = match serde_json::from_str::<Request>(&line) {
            Ok(req) => req,
            Err(e) => {
                shared.metrics.bad_request();
                let resp = Response::error(None, None, kind::BAD_REQUEST, e.to_string());
                if write_frame(&mut writer, &shared.metrics, &resp).is_err() {
                    break;
                }
                continue;
            }
        };
        if req.verb == verb::SHUTDOWN {
            if handle_shutdown(shared, req, &mut writer) {
                break;
            }
            continue;
        }
        let resp = route(shared, req);
        if write_frame(&mut writer, &shared.metrics, &resp).is_err() {
            break;
        }
    }
}

/// Handle the `shutdown` verb; returns true when the connection should
/// close (the server is exiting).
fn handle_shutdown(shared: &Shared, req: Request, writer: &mut TcpStream) -> bool {
    match shared.gate.begin() {
        None => {
            shared.metrics.shed_shutdown();
            let resp = Response::error(
                req.id,
                Some(verb::SHUTDOWN),
                kind::SHUTTING_DOWN,
                "service is already draining".into(),
            );
            let _ = write_frame(writer, &shared.metrics, &resp);
            false
        }
        Some(ticket) => {
            // Stop admissions; queued and in-flight work still drains.
            shared.queue.close();
            let resp = match ticket.snapshot.recv() {
                Ok(snapshot) => Response::ok_stats(req.id, verb::SHUTDOWN, snapshot),
                Err(_) => Response::error(
                    req.id,
                    Some(verb::SHUTDOWN),
                    kind::INTERNAL,
                    "server exited before the final snapshot".into(),
                ),
            };
            let _ = write_frame(writer, &shared.metrics, &resp);
            let _ = ticket.written.send(());
            true
        }
    }
}

/// Version gate: `None` when the request's declared version is fine
/// for its verb, otherwise the typed rejection.
///
/// An absent `version` means v1 — always accepted for the v1 verbs so
/// PR 2-era clients keep working unchanged. Session verbs demand an
/// explicit `version ≥ 2`; versions newer than this build are refused
/// outright (the client expects capabilities we cannot honor).
fn check_version(req: &Request) -> Option<Response> {
    let declared = req.version.unwrap_or(1);
    if declared > PROTOCOL_VERSION {
        return Some(Response::error(
            req.id,
            Some(req.verb.as_str()),
            kind::UNSUPPORTED_VERSION,
            format!("this server speaks protocol {PROTOCOL_VERSION}, request declared {declared}"),
        ));
    }
    let needs_v2 = matches!(req.verb.as_str(), verb::OPEN | verb::AMEND | verb::CLOSE);
    if needs_v2 && declared < 2 {
        return Some(Response::error(
            req.id,
            Some(req.verb.as_str()),
            kind::UNSUPPORTED_VERSION,
            format!("verb '{}' requires `\"version\": 2`", req.verb),
        ));
    }
    None
}

/// Route a parsed (non-shutdown) request to its response. Blocks for
/// admitted solve/batch/session work — per-connection request/reply
/// stays strictly ordered.
fn route(shared: &Shared, req: Request) -> Response {
    if let Some(reject) = check_version(&req) {
        shared.metrics.bad_request();
        return reject;
    }
    match req.verb.as_str() {
        verb::HEALTH => {
            if shared.gate.is_draining() {
                Response::error(
                    req.id,
                    Some(verb::HEALTH),
                    kind::SHUTTING_DOWN,
                    "service is draining".into(),
                )
            } else {
                Response::ok(req.id, verb::HEALTH)
            }
        }
        verb::STATS => {
            let snapshot = shared.metrics.snapshot(
                &shared.engine,
                shared.started,
                shared.queue.len(),
                shared.queue.capacity(),
            );
            Response::ok_stats(req.id, verb::STATS, snapshot)
        }
        verb::SOLVE | verb::BATCH | verb::OPEN | verb::AMEND => admit(shared, req),
        verb::CLOSE => handle_close(shared, &req),
        other => {
            shared.metrics.bad_request();
            Response::error(
                req.id,
                Some(other),
                kind::BAD_REQUEST,
                format!("unknown verb '{other}'"),
            )
        }
    }
}

/// Validate, admit (or shed), and await the worker's reply.
fn admit(shared: &Shared, req: Request) -> Response {
    let id = req.id;
    let verb_name = req.verb.clone();
    if shared.gate.is_draining() {
        shared.metrics.shed_shutdown();
        return Response::error(
            id,
            Some(verb_name.as_str()),
            kind::SHUTTING_DOWN,
            "service is draining".into(),
        );
    }
    let work = match validate(&req, shared.cfg.default_timeout) {
        Ok(work) => work,
        Err(message) => {
            shared.metrics.bad_request();
            return Response::error(id, Some(verb_name.as_str()), kind::BAD_REQUEST, message);
        }
    };
    let (reply_tx, reply_rx) = channel::bounded(1);
    let job = Job { id, work, reply: reply_tx, admitted: Instant::now() };
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared.metrics.admitted();
            reply_rx.recv().unwrap_or_else(|_| {
                Response::error(
                    id,
                    Some(verb_name.as_str()),
                    kind::INTERNAL,
                    "worker exited before answering".into(),
                )
            })
        }
        Err(Admit::Full(_)) => {
            shared.metrics.shed_overload();
            Response::error(
                id,
                Some(verb_name.as_str()),
                kind::OVERLOADED,
                format!("admission queue full ({} slots)", shared.queue.capacity()),
            )
        }
        Err(Admit::Closed(_)) => {
            shared.metrics.shed_shutdown();
            Response::error(
                id,
                Some(verb_name.as_str()),
                kind::SHUTTING_DOWN,
                "service is draining".into(),
            )
        }
    }
}

/// Turn a wire request into validated work, applying server defaults.
fn validate(req: &Request, default_timeout: Option<Duration>) -> Result<Work, String> {
    let opts = {
        let mut opts = SolverOptions::exact();
        opts.backend = match req.backend.as_deref() {
            None | Some("exact") => LpBackend::Exact,
            Some("float") => LpBackend::Float,
            Some("snap") => LpBackend::FloatThenSnap,
            Some(other) => return Err(format!("unknown backend '{other}' (exact|float|snap)")),
        };
        opts.polish = req.polish.unwrap_or(false);
        if let Some(shard) = req.shard.as_deref() {
            opts.shard = shard.parse()?;
        }
        opts
    };
    let timeout = req.timeout_ms.map(Duration::from_millis).or(default_timeout);
    match req.verb.as_str() {
        verb::SOLVE => {
            let raw = req.instance.as_ref().ok_or("solve needs an `instance`")?;
            let inst = Instance::new(raw.g, raw.jobs.clone())
                .map_err(|e| format!("invalid instance: {e}"))?;
            let method: Method = req.method.as_deref().unwrap_or("auto").parse()?;
            Ok(Work::Solve {
                inst,
                method,
                opts,
                seed: req.seed,
                timeout,
                include_schedule: req.include_schedule.unwrap_or(false),
            })
        }
        verb::BATCH => {
            let raw = req.instances.as_ref().ok_or("batch needs `instances`")?;
            let mut instances = Vec::with_capacity(raw.len());
            for (i, r) in raw.iter().enumerate() {
                instances.push(
                    Instance::new(r.g, r.jobs.clone())
                        .map_err(|e| format!("invalid instance at index {i}: {e}"))?,
                );
            }
            Ok(Work::Batch { instances, opts, timeout })
        }
        verb::OPEN => {
            let raw = req.instance.as_ref().ok_or("open needs an `instance`")?;
            let inst = Instance::new(raw.g, raw.jobs.clone())
                .map_err(|e| format!("invalid instance: {e}"))?;
            if req.method.as_deref().is_some_and(|m| m != "auto" && m != "nested") {
                return Err("sessions always solve on the nested path; omit `method`".into());
            }
            Ok(Work::Open {
                inst,
                opts,
                timeout,
                include_schedule: req.include_schedule.unwrap_or(false),
            })
        }
        verb::AMEND => {
            let session = req.session.ok_or("amend needs a `session` id")?;
            let delta = req.delta.clone().ok_or("amend needs a `delta`")?;
            if delta.is_empty() {
                return Err("amend `delta` has no ops".into());
            }
            Ok(Work::Amend {
                session,
                delta,
                timeout,
                include_schedule: req.include_schedule.unwrap_or(false),
            })
        }
        other => Err(format!("verb '{other}' is not admittable")),
    }
}

/// Evict sessions idle past the TTL. Called lazily on every session
/// verb; counts each eviction under `serve.sessions_expired`.
fn sweep_sessions(shared: &Shared) {
    let ttl = shared.cfg.session_ttl;
    let mut table = shared.sessions.lock().expect("sessions lock");
    let expired: Vec<u64> =
        table.iter().filter(|(_, touched)| touched.elapsed() > ttl).map(|(&id, _)| id).collect();
    for id in expired {
        table.remove(&id);
        shared.engine.close_session(SessionId::from(id));
        shared.metrics.session_expired();
    }
}

/// `close` is answered inline (no solve happens): drop the session from
/// both tables. Closing an unknown (or already-evicted) session is the
/// typed [`kind::UNKNOWN_SESSION`] error so clients can distinguish
/// "closed twice" from "never opened".
fn handle_close(shared: &Shared, req: &Request) -> Response {
    sweep_sessions(shared);
    let Some(session) = req.session else {
        shared.metrics.bad_request();
        return Response::error(
            req.id,
            Some(verb::CLOSE),
            kind::BAD_REQUEST,
            "close needs a `session` id".into(),
        );
    };
    let known = shared.sessions.lock().expect("sessions lock").remove(&session).is_some();
    if known && shared.engine.close_session(SessionId::from(session)) {
        shared.metrics.session_closed();
        Response::ok(req.id, verb::CLOSE).with_version(PROTOCOL_VERSION).with_session(session)
    } else {
        Response::error(
            req.id,
            Some(verb::CLOSE),
            kind::UNKNOWN_SESSION,
            format!("session {session} is not open"),
        )
        .with_version(PROTOCOL_VERSION)
    }
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if shared.cfg.delay_ms > 0 {
            thread::sleep(Duration::from_millis(shared.cfg.delay_ms));
        }
        let Job { id, work, reply, admitted } = job;
        let resp = match work {
            Work::Solve { inst, method, opts, seed, timeout, include_schedule } => {
                execute_solve(shared, id, inst, method, opts, seed, timeout, include_schedule)
            }
            Work::Batch { instances, opts, timeout } => {
                execute_batch(shared, id, instances, opts, timeout)
            }
            Work::Open { inst, opts, timeout, include_schedule } => {
                execute_open(shared, id, inst, opts, timeout, include_schedule)
            }
            Work::Amend { session, delta, timeout, include_schedule } => {
                execute_amend(shared, id, session, delta, timeout, include_schedule)
            }
        };
        let deadline_overrun = resp.error_kind() == Some(kind::TIMED_OUT);
        let solve_error = matches!(resp.error_kind(), Some(kind::INFEASIBLE) | Some(kind::FAILED));
        shared.metrics.finished(
            admitted.elapsed().as_secs_f64() * 1e3,
            deadline_overrun,
            solve_error,
        );
        // The handler may have died with its connection; nothing to do.
        let _ = reply.send(resp);
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_solve(
    shared: &Arc<Shared>,
    id: Option<u64>,
    inst: Instance,
    method: Method,
    opts: SolverOptions,
    seed: Option<u64>,
    timeout: Option<Duration>,
    include_schedule: bool,
) -> Response {
    let start = Instant::now();
    // Auto-dispatch mirrors the `Solve` facade: nested when laminar.
    let method = match method {
        Method::Auto => {
            if inst.check_laminar().is_ok() {
                Method::Nested
            } else {
                Method::General
            }
        }
        other => other,
    };
    if method == Method::Nested {
        // Nested solves go through the shared engine so repeats across
        // requests (and clients) hit its content-keyed cache.
        let outcome = match timeout {
            None => shared.engine.solve_one(&inst, &opts),
            Some(budget) => {
                let engine_shared = Arc::clone(shared);
                let inst = inst.clone();
                let opts = opts.clone();
                match with_budget(move || engine_shared.engine.solve_one(&inst, &opts), budget) {
                    Ok(outcome) => outcome,
                    Err(Interrupt::TimedOut) => Outcome::TimedOut,
                    Err(Interrupt::Panicked(msg)) => Outcome::Failed(msg),
                }
            }
        };
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Outcome::Solved(item) => Response::ok_solve(
                id,
                SolveReply {
                    active_slots: item.result.schedule.active_time() as u64,
                    method: "nested".into(),
                    certified_ratio: Some(item.result.stats.opened_over_lp),
                    cached: item.cached,
                    elapsed_ms,
                    schedule: include_schedule.then(|| item.result.schedule.clone()),
                },
            ),
            Outcome::Infeasible => Response::error(
                id,
                Some(verb::SOLVE),
                kind::INFEASIBLE,
                "instance is infeasible".into(),
            ),
            Outcome::TimedOut => deadline_response(id, verb::SOLVE, timeout),
            Outcome::Failed(msg) => Response::error(id, Some(verb::SOLVE), kind::FAILED, msg),
        }
    } else {
        let mut solve = Solve::new(&inst).method(method).options(opts);
        if let Some(seed) = seed {
            solve = solve.seed(seed);
        }
        if let Some(budget) = timeout {
            solve = solve.timeout(budget);
        }
        let result = solve.run();
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        match result {
            Ok(outcome) => Response::ok_solve(
                id,
                SolveReply {
                    active_slots: outcome.active_time() as u64,
                    method: outcome.method_label().into(),
                    certified_ratio: outcome.certified_ratio(),
                    cached: false,
                    elapsed_ms,
                    schedule: include_schedule.then(|| outcome.schedule().clone()),
                },
            ),
            Err(Error::Infeasible) => Response::error(
                id,
                Some(verb::SOLVE),
                kind::INFEASIBLE,
                "instance is infeasible".into(),
            ),
            Err(Error::TimedOut) => deadline_response(id, verb::SOLVE, timeout),
            Err(Error::Instance(e)) => {
                Response::error(id, Some(verb::SOLVE), kind::BAD_REQUEST, e.to_string())
            }
            Err(e) => Response::error(id, Some(verb::SOLVE), kind::FAILED, e.to_string()),
        }
    }
}

fn execute_batch(
    shared: &Arc<Shared>,
    id: Option<u64>,
    instances: Vec<Instance>,
    opts: SolverOptions,
    timeout: Option<Duration>,
) -> Response {
    let result = match timeout {
        None => shared.engine.solve_batch(&instances, &opts),
        Some(budget) => {
            let engine_shared = Arc::clone(shared);
            let opts = opts.clone();
            match with_budget(move || engine_shared.engine.solve_batch(&instances, &opts), budget) {
                Ok(result) => result,
                Err(Interrupt::TimedOut) => return deadline_response(id, verb::BATCH, timeout),
                Err(Interrupt::Panicked(msg)) => {
                    return Response::error(id, Some(verb::BATCH), kind::FAILED, msg)
                }
            }
        }
    };
    let items = result
        .outcomes
        .iter()
        .enumerate()
        .map(|(index, outcome)| BatchItemReply {
            index: index as u64,
            outcome: outcome.label().to_string(),
            active_slots: outcome.as_solved().map(|s| s.result.schedule.active_time() as u64),
            cached: outcome.as_solved().map(|s| s.cached),
            message: match outcome {
                Outcome::Failed(msg) => Some(msg.clone()),
                _ => None,
            },
        })
        .collect();
    let report = &result.report;
    Response::ok_batch(
        id,
        BatchReply {
            items,
            total: report.total as u64,
            solved: report.solved as u64,
            infeasible: report.infeasible as u64,
            timed_out: report.timed_out as u64,
            failed: report.failed as u64,
            wall_clock_ms: report.wall_clock_ms,
            cache_hits: report.cache.hits,
            cache_misses: report.cache.misses,
        },
    )
}

/// Shape a session solve outcome into the reply frame. Used by both
/// `open` and `amend`; errors still echo the session id so the client
/// knows the session survives (it does — an infeasible amendment keeps
/// the session open and amendable).
fn session_outcome_response(
    id: Option<u64>,
    verb_name: &'static str,
    session: u64,
    outcome: Outcome,
    elapsed_ms: f64,
    include_schedule: bool,
    timeout: Option<Duration>,
) -> Response {
    let resp = match outcome {
        Outcome::Solved(item) => Response {
            solve: Some(SolveReply {
                active_slots: item.result.schedule.active_time() as u64,
                method: "nested".into(),
                certified_ratio: Some(item.result.stats.opened_over_lp),
                cached: item.cached,
                elapsed_ms,
                schedule: include_schedule.then(|| item.result.schedule.clone()),
            }),
            ..Response::ok(id, verb_name)
        },
        Outcome::Infeasible => Response::error(
            id,
            Some(verb_name),
            kind::INFEASIBLE,
            "instance is infeasible (the session stays open and amendable)".into(),
        ),
        Outcome::TimedOut => deadline_response(id, verb_name, timeout),
        Outcome::Failed(msg) => Response::error(id, Some(verb_name), kind::FAILED, msg),
    };
    resp.with_version(PROTOCOL_VERSION).with_session(session)
}

fn execute_open(
    shared: &Arc<Shared>,
    id: Option<u64>,
    inst: Instance,
    opts: SolverOptions,
    timeout: Option<Duration>,
    include_schedule: bool,
) -> Response {
    sweep_sessions(shared);
    let start = Instant::now();
    let opened = match timeout {
        None => {
            let session = shared.engine.open_session(inst, &opts);
            Ok((session.id().as_u64(), session.outcome()))
        }
        Some(budget) => {
            let engine_shared = Arc::clone(shared);
            with_budget(
                move || {
                    let session = engine_shared.engine.open_session(inst, &opts);
                    (session.id().as_u64(), session.outcome())
                },
                budget,
            )
        }
    };
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    match opened {
        Ok((session, outcome)) => {
            shared.sessions.lock().expect("sessions lock").insert(session, Instant::now());
            shared.metrics.session_opened();
            session_outcome_response(
                id,
                verb::OPEN,
                session,
                outcome,
                elapsed_ms,
                include_schedule,
                timeout,
            )
        }
        // The budget thread keeps running detached on a timeout, so the
        // engine session it opens is unreachable wire-side; the next
        // sweep cannot see it either (it was never registered), but the
        // engine table drops it with the server. Opens are expected to
        // fit their budget; this is the honest failure mode.
        Err(Interrupt::TimedOut) => {
            deadline_response(id, verb::OPEN, timeout).with_version(PROTOCOL_VERSION)
        }
        Err(Interrupt::Panicked(msg)) => {
            Response::error(id, Some(verb::OPEN), kind::FAILED, msg).with_version(PROTOCOL_VERSION)
        }
    }
}

fn execute_amend(
    shared: &Arc<Shared>,
    id: Option<u64>,
    session: u64,
    delta: DeltaSpec,
    timeout: Option<Duration>,
    include_schedule: bool,
) -> Response {
    sweep_sessions(shared);
    let unknown = || {
        Response::error(
            id,
            Some(verb::AMEND),
            kind::UNKNOWN_SESSION,
            format!("session {session} is not open"),
        )
        .with_version(PROTOCOL_VERSION)
    };
    if !shared.sessions.lock().expect("sessions lock").contains_key(&session) {
        return unknown();
    }
    let start = Instant::now();
    // `None` inside the budget result means the session vanished
    // between the table check and the engine lookup (a concurrent
    // `close` won the race) — that is "unknown session", not an error.
    let amended = match timeout {
        None => {
            Ok(shared.engine.session(SessionId::from(session)).map(|s| s.amend(&delta.to_delta())))
        }
        Some(budget) => {
            let engine_shared = Arc::clone(shared);
            with_budget(
                move || {
                    engine_shared
                        .engine
                        .session(SessionId::from(session))
                        .map(|s| s.amend(&delta.to_delta()))
                },
                budget,
            )
        }
    };
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    match amended {
        Ok(None) => unknown(),
        Ok(Some(Ok(outcome))) => {
            shared.sessions.lock().expect("sessions lock").insert(session, Instant::now());
            session_outcome_response(
                id,
                verb::AMEND,
                session,
                outcome,
                elapsed_ms,
                include_schedule,
                timeout,
            )
        }
        // A bad delta leaves the session exactly as it was.
        Ok(Some(Err(delta_err))) => {
            Response::error(id, Some(verb::AMEND), kind::BAD_REQUEST, delta_err.to_string())
                .with_version(PROTOCOL_VERSION)
                .with_session(session)
        }
        Err(Interrupt::TimedOut) => {
            deadline_response(id, verb::AMEND, timeout).with_version(PROTOCOL_VERSION)
        }
        Err(Interrupt::Panicked(msg)) => {
            Response::error(id, Some(verb::AMEND), kind::FAILED, msg).with_version(PROTOCOL_VERSION)
        }
    }
}

fn deadline_response(id: Option<u64>, verb_name: &str, timeout: Option<Duration>) -> Response {
    let budget = timeout.map(|t| t.as_millis()).unwrap_or(0);
    Response::error(
        id,
        Some(verb_name),
        kind::TIMED_OUT,
        format!("request exceeded its {budget} ms deadline"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_frame_splits_lines_and_survives_oversize() {
        let data = b"short\nway too long line here\nnext\n";
        let mut reader = BufReader::new(Cursor::new(&data[..]));
        match read_frame(&mut reader, 10).unwrap() {
            Frame::Line(s) => assert_eq!(s, "short"),
            _ => panic!("expected a line"),
        }
        assert!(matches!(read_frame(&mut reader, 10).unwrap(), Frame::Malformed(_)));
        // The oversized line was consumed to its terminator: the stream
        // is back in sync.
        match read_frame(&mut reader, 10).unwrap() {
            Frame::Line(s) => assert_eq!(s, "next"),
            _ => panic!("expected a line"),
        }
        assert!(matches!(read_frame(&mut reader, 10).unwrap(), Frame::Eof));
    }

    #[test]
    fn read_frame_handles_crlf_final_fragment_and_bad_utf8() {
        let mut reader = BufReader::new(Cursor::new(&b"a\r\ntail"[..]));
        match read_frame(&mut reader, 100).unwrap() {
            Frame::Line(s) => assert_eq!(s, "a"),
            _ => panic!("expected a line"),
        }
        match read_frame(&mut reader, 100).unwrap() {
            Frame::Line(s) => assert_eq!(s, "tail"),
            _ => panic!("unterminated final line is still a frame"),
        }
        let mut reader = BufReader::new(Cursor::new(&b"\xff\xfe\n"[..]));
        assert!(matches!(read_frame(&mut reader, 100).unwrap(), Frame::Malformed(_)));
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let err = validate(&Request::new(verb::SOLVE), None).unwrap_err();
        assert!(err.contains("instance"), "{err}");

        let bad = Request {
            instance: Some(Instance { g: 0, jobs: Vec::new() }),
            ..Request::new(verb::SOLVE)
        };
        let err = validate(&bad, None).unwrap_err();
        assert!(err.contains("invalid instance"), "{err}");

        let inst = Instance::new(2, vec![atsched_core::instance::Job::new(0, 4, 2)]).unwrap();
        let err = validate(&Request::solve(&inst).with_method("fancy"), None).unwrap_err();
        assert!(err.contains("unknown method"), "{err}");
        let err = validate(&Request::solve(&inst).with_backend("gpu"), None).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        let err = validate(&Request::solve(&inst).with_shard("maybe"), None).unwrap_err();
        assert!(err.contains("unknown shard mode"), "{err}");

        // Defaults flow through.
        match validate(&Request::solve(&inst), Some(Duration::from_secs(1))).unwrap() {
            Work::Solve { timeout, method, include_schedule, opts, .. } => {
                assert_eq!(timeout, Some(Duration::from_secs(1)));
                assert_eq!(method, Method::Auto);
                assert!(!include_schedule);
                assert_eq!(opts.shard, atsched_core::solver::ShardMode::Auto);
            }
            _ => panic!("expected solve work"),
        }

        // Explicit shard modes parse onto the options.
        match validate(&Request::solve(&inst).with_shard("force"), None).unwrap() {
            Work::Solve { opts, .. } => {
                assert_eq!(opts.shard, atsched_core::solver::ShardMode::Force);
            }
            _ => panic!("expected solve work"),
        }
    }

    /// A payload whose serialization always fails, standing in for a
    /// response the encoder cannot represent. (A real [`Response`]
    /// never fails with the vendored writer, so the regression test
    /// injects the failure at the trait boundary `encode_frame` uses.)
    struct Unserializable;

    impl serde::ser::Serialize for Unserializable {
        fn serialize<S: serde::ser::Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
            Err(serde::ser::Error::custom("injected serialization failure"))
        }
    }

    #[test]
    fn serialization_failure_sends_fallback_frame_instead_of_panicking() {
        let metrics = ServerMetrics::default();

        // Healthy path: no fallback, no counter movement.
        let ok = Response::ok(Some(3), verb::HEALTH);
        let line = encode_frame(&ok, &metrics);
        assert!(line.ends_with('\n'));
        assert!(line.contains("\"ok\""));
        assert_eq!(metrics.registry().counter("serve.serialize_errors").get(), 0);

        // Failure path: the static fallback frame goes out and the
        // failure is counted — previously this was an `expect` panic
        // that took the whole connection handler down.
        let line = encode_frame(&Unserializable, &metrics);
        assert!(line.ends_with('\n'), "frames stay newline-terminated: {line:?}");
        assert_eq!(metrics.registry().counter("serve.serialize_errors").get(), 1);

        // The fallback frame is itself a well-formed error Response.
        let back: Response = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(back.status, "error");
        assert_eq!(back.id, None);
        let err = back.error.expect("fallback carries an error payload");
        assert_eq!(err.kind, kind::INTERNAL);
        assert!(err.message.contains("serialization"));
    }
}
