//! The reactor-based TCP solve server.
//!
//! Architecture (epoll readiness via `atsched-net`, no async runtime):
//!
//! ```text
//!        reactor 0 (owns the listener, accepts)
//!            │ round-robin handoff of connections
//!            ▼
//!   R reactor event loops ── frames ── parse ── validate
//!        │                               │
//!        │ health/stats/close            │ solve/batch/open/amend
//!        ▼                               ▼
//!   answered inline          consistent-hash route to a shard
//!                                        │
//!                            AdmissionQueue[shard] ──full──▶ `overloaded`
//!                                        │
//!                            shard solver threads (Engine + cache)
//!                                        │ per-request deadline
//!                                        ▼
//!                            Remote mailbox ──▶ owning reactor writes
//! ```
//!
//! Request/response is strictly sequential per connection: admitting a
//! request pauses reading on that connection until its reply (or its
//! deadline preemption) resumes it, so replies can never cross-wire.
//! One reactor thread multiplexes thousands of connections; parallelism
//! comes from the solver threads behind each shard's bounded queue.

use crate::admission::AdmissionQueue;
use crate::protocol::{
    kind, verb, BatchItemReply, BatchReply, DeltaSpec, Request, Response, SolveReply,
    PROTOCOL_VERSION,
};
use crate::router::{HashRing, Msg, ServeLoop};
use crate::shutdown::ShutdownGate;
use crate::stats::ServerMetrics;
use atsched_core::instance::Instance;
use atsched_core::solver::{LpBackend, SolverOptions};
use atsched_engine::{with_budget, Engine, EngineConfig, Interrupt, Outcome, SessionId};
use atsched_net::{ConnId, Reactor, ReactorConfig, Remote};
use atsched_obs::{Collector, EventLog, RequestEvent, RequestTrace, WindowedCounter};
use nested_active_time::{Error, Method, Solve};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration (builder-style).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Solver worker threads; `0` means one per available core.
    pub workers: usize,
    /// Admission-queue depth — the load-shedding threshold; `0` means
    /// `2 × workers`. Split across router shards.
    pub queue_depth: usize,
    /// Router event-loop workers (each with its own engine shard and
    /// admission queue); `0` means 1.
    pub router_workers: usize,
    /// Deadline applied to requests that do not set `timeout_ms`;
    /// `None` disables the default cap.
    pub default_timeout: Option<Duration>,
    /// Maximum accepted request-frame length; longer lines get a
    /// `bad_request` response and are skipped (the connection survives).
    pub max_line_bytes: usize,
    /// Cap on wire-visible open sessions; `open` beyond it is refused
    /// with a typed `overloaded` response.
    pub max_sessions: usize,
    /// Artificial delay before each admitted request is executed.
    /// Load-testing aid (lets tests saturate the queue
    /// deterministically); keep `0` in production.
    pub delay_ms: u64,
    /// Idle time after which an open session is evicted — swept
    /// periodically by reactor 0 and eagerly on every session verb and
    /// on `stats`.
    pub session_ttl: Duration,
    /// Optional plain-HTTP scrape listener address (`host:port`, port 0
    /// picks an ephemeral port): `GET /metrics` returns Prometheus-style
    /// text exposition, any other path the JSON stats snapshot.
    /// `None` (the default) disables the listener; the `metrics` verb
    /// on the protocol port works either way.
    pub metrics_addr: Option<String>,
    /// Completed requests slower than this (end-to-end, milliseconds)
    /// are recorded in the bounded slow-request log with their
    /// per-stage timings; errored requests are always recorded. `0`
    /// logs every request (tests, debugging).
    pub slow_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7411".into(),
            workers: 0,
            queue_depth: 0,
            router_workers: 0,
            default_timeout: Some(Duration::from_secs(30)),
            max_line_bytes: 1 << 20,
            max_sessions: 4096,
            delay_ms: 0,
            session_ttl: Duration::from_secs(15 * 60),
            metrics_addr: None,
            slow_ms: 500,
        }
    }
}

impl ServerConfig {
    /// Set the listen address.
    pub fn addr(mut self, addr: &str) -> Self {
        self.addr = addr.to_string();
        self
    }

    /// Set the worker count (`0` = one per core).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Set the admission-queue depth (`0` = `2 × workers`).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Set the router event-loop worker count (`0` = 1).
    pub fn router_workers(mut self, n: usize) -> Self {
        self.router_workers = n;
        self
    }

    /// Set (or with `None` disable) the default per-request deadline.
    pub fn default_timeout(mut self, budget: Option<Duration>) -> Self {
        self.default_timeout = budget;
        self
    }

    /// Set the open-session cap.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }

    /// Set the artificial pre-execution delay (load-testing aid).
    pub fn delay_ms(mut self, ms: u64) -> Self {
        self.delay_ms = ms;
        self
    }

    /// Set the session idle TTL.
    pub fn session_ttl(mut self, ttl: Duration) -> Self {
        self.session_ttl = ttl;
        self
    }

    /// Enable the plain-HTTP scrape listener on this address.
    pub fn metrics_addr(mut self, addr: &str) -> Self {
        self.metrics_addr = Some(addr.to_string());
        self
    }

    /// Set the slow-request threshold (ms); `0` logs every request.
    pub fn slow_ms(mut self, ms: u64) -> Self {
        self.slow_ms = ms;
        self
    }

    fn effective_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    }

    fn effective_queue_depth(&self) -> usize {
        if self.queue_depth != 0 {
            return self.queue_depth;
        }
        2 * self.effective_workers()
    }

    fn effective_router_workers(&self) -> usize {
        self.router_workers.max(1)
    }
}

/// `total` split as evenly as possible over `parts`, slot `index`.
fn share(total: usize, parts: usize, index: usize) -> usize {
    total / parts + usize::from(index < total % parts)
}

/// A validated unit of admitted work.
#[derive(Debug)]
pub(crate) enum Work {
    Solve {
        inst: Instance,
        method: Method,
        opts: SolverOptions,
        seed: Option<u64>,
        timeout: Option<Duration>,
        include_schedule: bool,
    },
    Batch {
        instances: Vec<Instance>,
        opts: SolverOptions,
        timeout: Option<Duration>,
    },
    Open {
        inst: Instance,
        opts: SolverOptions,
        timeout: Option<Duration>,
        include_schedule: bool,
    },
    Amend {
        session: u64,
        delta: DeltaSpec,
        timeout: Option<Duration>,
        include_schedule: bool,
    },
}

/// The wall-clock budget of a piece of work.
pub(crate) fn timeout_of(work: &Work) -> Option<Duration> {
    match work {
        Work::Solve { timeout, .. }
        | Work::Batch { timeout, .. }
        | Work::Open { timeout, .. }
        | Work::Amend { timeout, .. } => *timeout,
    }
}

/// A queued request: validated work plus its reply path back to the
/// reactor that owns the connection.
pub(crate) struct Job {
    pub(crate) id: Option<u64>,
    pub(crate) work: Work,
    pub(crate) conn: ConnId,
    pub(crate) seq: u64,
    pub(crate) reply_to: Remote<Msg>,
    pub(crate) admitted: Instant,
    /// Request-trace context created at admission: server-assigned id,
    /// verb, owning shard, and (once executed) per-stage breadcrumbs.
    pub(crate) trace: Arc<RequestTrace>,
}

/// One router shard: an engine (with its own solve cache) fed by a
/// bounded admission queue, drained by `threads` solver threads.
pub(crate) struct ShardState {
    pub(crate) engine: Engine,
    pub(crate) queue: AdmissionQueue<Job>,
    threads: usize,
}

/// A wire-visible session: which shard's engine holds it, under which
/// engine-local id, and when it was last touched (for the idle TTL).
pub(crate) struct SessionEntry {
    pub(crate) shard: usize,
    pub(crate) engine: SessionId,
    pub(crate) touched: Instant,
}

/// Events the reactors raise to the coordinator in [`Server::run`].
pub(crate) enum DrainEvent {
    /// A `shutdown` verb won the gate on `reactor`; answer `conn` with
    /// the final snapshot once the drain completes.
    Request { reactor: usize, conn: ConnId, id: Option<u64> },
    /// A reactor's event loop died with an I/O error.
    ReactorFailed(String),
}

/// Everything shared between the reactors, solver threads, and the
/// coordinator.
pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) metrics: ServerMetrics,
    pub(crate) gate: ShutdownGate,
    pub(crate) started: Instant,
    pub(crate) shards: Vec<ShardState>,
    pub(crate) ring: HashRing,
    /// Wire session id → owning shard + engine session. Wire ids are
    /// allocated server-side ([`Shared::next_session`]) because engine
    /// session ids are only unique per shard.
    pub(crate) sessions: Mutex<HashMap<u64, SessionEntry>>,
    pub(crate) next_session: AtomicU64,
    /// `open` requests admitted but not yet registered in the table;
    /// counted against `max_sessions` so a burst of opens cannot blow
    /// past the cap while in flight.
    pub(crate) open_reservations: AtomicUsize,
    /// One mailbox per reactor; set once by [`Server::run`] before any
    /// reactor thread starts.
    remotes: OnceLock<Vec<Remote<Msg>>>,
    pub(crate) drain_tx: mpsc::Sender<DrainEvent>,
    pub(crate) drain_written_tx: mpsc::Sender<()>,
    /// Server-assigned request ids for admitted work (monotonic,
    /// distinct from client correlation ids).
    pub(crate) next_request_id: AtomicU64,
    /// Bounded log of recent slow or errored requests.
    pub(crate) events: EventLog,
    /// Per-shard windowed request counters
    /// (`serve.shard.{i}.requests`), bumped at admission.
    pub(crate) shard_requests: Vec<Arc<WindowedCounter>>,
}

impl Shared {
    pub(crate) fn remotes(&self) -> &[Remote<Msg>] {
        self.remotes.get().expect("remotes installed before serving")
    }

    pub(crate) fn remote(&self, reactor: usize) -> Remote<Msg> {
        self.remotes()[reactor].clone()
    }
}

/// A bound (but not yet running) solve server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    drain_rx: mpsc::Receiver<DrainEvent>,
    written_rx: mpsc::Receiver<()>,
    /// The scrape listener, already accepting (it is read-only and
    /// needs no reactor), when `metrics_addr` was configured.
    scrape: Option<crate::scrape::MetricsListener>,
}

/// Join handle for a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    join: JoinHandle<io::Result<crate::protocol::StatsReply>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scrape listener's bound address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Wait for the server to drain and return its final snapshot.
    pub fn join(self) -> io::Result<crate::protocol::StatsReply> {
        self.join.join().unwrap_or_else(|_| Err(io::Error::other("server thread panicked")))
    }
}

impl Server {
    /// Bind the listen socket; the server starts serving on
    /// [`run`](Server::run) / [`spawn`](Server::spawn).
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        // Thousands of concurrent connections need fd headroom beyond
        // the usual 1024 soft cap; best-effort raise to the hard limit.
        let _ = atsched_net::raise_nofile_limit();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let routers = cfg.effective_router_workers();
        let total_threads = cfg.effective_workers();
        let total_depth = cfg.effective_queue_depth();
        // One registry shared by server-level counters and every shard
        // engine's solver instrumentation: `stats` snapshots all of it.
        let registry = Arc::new(atsched_obs::Registry::new());
        let shards = (0..routers)
            .map(|i| {
                let threads = share(total_threads, routers, i).max(1);
                ShardState {
                    engine: Engine::with_registry(
                        EngineConfig::default().workers(threads),
                        Arc::clone(&registry),
                    ),
                    queue: AdmissionQueue::new(share(total_depth, routers, i).max(1)),
                    threads,
                }
            })
            .collect();
        let shard_requests = (0..routers)
            .map(|i| registry.windowed_counter(&format!("serve.shard.{i}.requests")))
            .collect();
        let (drain_tx, drain_rx) = mpsc::channel();
        let (drain_written_tx, written_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            cfg,
            metrics: ServerMetrics::new(registry),
            gate: ShutdownGate::default(),
            started: Instant::now(),
            ring: HashRing::new(routers),
            shards,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            open_reservations: AtomicUsize::new(0),
            remotes: OnceLock::new(),
            drain_tx,
            drain_written_tx,
            next_request_id: AtomicU64::new(0),
            // Enough depth to hold a burst of slow requests without
            // unbounded growth; `stats` reports the newest few.
            events: EventLog::new(64),
            shard_requests,
        });
        // The scrape surface is read-only and independent of the
        // reactors, so it can start answering as soon as the state it
        // snapshots exists.
        let scrape = match &shared.cfg.metrics_addr {
            Some(addr) => Some(crate::scrape::spawn_metrics_listener(Arc::clone(&shared), addr)?),
            None => None,
        };
        Ok(Server { listener, addr, shared, drain_rx, written_rx, scrape })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scrape listener's bound address, when one was configured
    /// (useful with a port-0 `metrics_addr`).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.scrape.as_ref().map(|s| s.addr)
    }

    /// Serve until a `shutdown` request drains the server; returns the
    /// final stats snapshot.
    pub fn run(self) -> io::Result<crate::protocol::StatsReply> {
        let Server { listener, addr: _, shared, drain_rx, written_rx, scrape } = self;

        // Build every reactor before spawning anything, so a failure
        // here needs no cleanup.
        let rcfg =
            ReactorConfig { max_line_bytes: shared.cfg.max_line_bytes, ..ReactorConfig::default() };
        let mut built = Vec::new();
        let mut remotes = Vec::new();
        for index in 0..shared.shards.len() {
            let (reactor, remote) =
                Reactor::new(rcfg.clone(), ServeLoop::new(Arc::clone(&shared), index))?;
            built.push(reactor);
            remotes.push(remote);
        }
        built[0].listen(listener)?;
        assert!(shared.remotes.set(remotes).is_ok(), "remotes installed once");

        let solvers: Vec<JoinHandle<()>> = shared
            .shards
            .iter()
            .enumerate()
            .flat_map(|(index, shard)| (0..shard.threads).map(move |_| index).collect::<Vec<_>>())
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared, index))
            })
            .collect();

        let reactors: Vec<JoinHandle<()>> = built
            .into_iter()
            .map(|reactor| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    if let Err(e) = reactor.run() {
                        let _ = shared.drain_tx.send(DrainEvent::ReactorFailed(e.to_string()));
                    }
                })
            })
            .collect();

        // Coordinator: block until a `shutdown` wins the gate (or a
        // reactor dies), drain, snapshot, answer, stop.
        let event = drain_rx.recv().unwrap_or_else(|_| {
            DrainEvent::ReactorFailed("every reactor exited without draining".into())
        });
        let result = match event {
            DrainEvent::Request { reactor, conn, id } => {
                // The winning reactor already closed every queue;
                // joining the solvers waits out the admitted backlog.
                for solver in solvers {
                    let _ = solver.join();
                }
                // Every reply the workers sent is already in its
                // reactor's mailbox (FIFO), so the snapshot reflects a
                // fully-answered server — and the drain closes all
                // live sessions before reporting.
                drain_sessions(&shared);
                let snapshot = snapshot_all(&shared);
                let resp = Response::ok_stats(id, verb::SHUTDOWN, snapshot.clone());
                if shared.remotes()[reactor].send(Msg::Final { conn, resp: Box::new(resp) }) {
                    // Give the requester a grace window to receive it.
                    let _ = written_rx.recv_timeout(Duration::from_secs(5));
                }
                Ok(snapshot)
            }
            DrainEvent::ReactorFailed(msg) => {
                shared.gate.begin_silent();
                for shard in &shared.shards {
                    shard.queue.close();
                }
                for solver in solvers {
                    let _ = solver.join();
                }
                Err(io::Error::other(msg))
            }
        };
        if let Some(scrape) = scrape {
            scrape.shutdown();
        }
        for remote in shared.remotes() {
            remote.send(Msg::Stop);
        }
        for reactor in reactors {
            let _ = reactor.join();
        }
        result
    }

    /// Run on a background thread (tests, embedding).
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let metrics_addr = self.metrics_addr();
        let join = thread::spawn(move || self.run());
        ServerHandle { addr, metrics_addr, join }
    }
}

// ---------------------------------------------------------------------
// Frame encoding
// ---------------------------------------------------------------------

/// Wire frame sent when a response fails to serialize. Static so it
/// cannot itself fail, and shaped like any other error [`Response`] so
/// clients need no special handling.
const SERIALIZE_FALLBACK_FRAME: &str = concat!(
    r#"{"id":null,"status":"error","error":"#,
    r#"{"kind":"internal","message":"response serialization failed"}}"#,
);

/// Encode one response as a newline-terminated frame.
///
/// A response that fails to serialize must not take the connection (or
/// the server) down with it: the failure is counted under
/// `serve.serialize_errors` and a static `internal` error frame goes
/// out in its place, keeping the request/reply cadence intact.
pub(crate) fn encode_frame<T: serde::ser::Serialize>(resp: &T, metrics: &ServerMetrics) -> String {
    let mut line = match serde_json::to_string(resp) {
        Ok(line) => line,
        Err(_) => {
            metrics.serialize_error();
            SERIALIZE_FALLBACK_FRAME.to_string()
        }
    };
    line.push('\n');
    line
}

// ---------------------------------------------------------------------
// Request validation and inline verbs
// ---------------------------------------------------------------------

/// Version gate: `None` when the request's declared version is fine
/// for its verb, otherwise the typed rejection.
///
/// An absent `version` means v1 — always accepted for the v1 verbs so
/// PR 2-era clients keep working unchanged. Session verbs demand an
/// explicit `version ≥ 2`; versions newer than this build are refused
/// outright (the client expects capabilities we cannot honor).
pub(crate) fn check_version(req: &Request) -> Option<Response> {
    let declared = req.version.unwrap_or(1);
    if declared > PROTOCOL_VERSION {
        return Some(Response::error(
            req.id,
            Some(req.verb.as_str()),
            kind::UNSUPPORTED_VERSION,
            format!("this server speaks protocol {PROTOCOL_VERSION}, request declared {declared}"),
        ));
    }
    let needs_v2 = matches!(req.verb.as_str(), verb::OPEN | verb::AMEND | verb::CLOSE);
    if needs_v2 && declared < 2 {
        return Some(Response::error(
            req.id,
            Some(req.verb.as_str()),
            kind::UNSUPPORTED_VERSION,
            format!("verb '{}' requires `\"version\": 2`", req.verb),
        ));
    }
    None
}

/// Turn a wire request into validated work, applying server defaults.
pub(crate) fn validate(req: &Request, default_timeout: Option<Duration>) -> Result<Work, String> {
    let opts = {
        let mut opts = SolverOptions::exact();
        opts.backend = match req.backend.as_deref() {
            None | Some("exact") => LpBackend::Exact,
            Some("float") => LpBackend::Float,
            Some("snap") => LpBackend::FloatThenSnap,
            Some(other) => return Err(format!("unknown backend '{other}' (exact|float|snap)")),
        };
        opts.polish = req.polish.unwrap_or(false);
        if let Some(shard) = req.shard.as_deref() {
            opts.shard = shard.parse()?;
        }
        if let Some(precision) = req.precision.as_deref() {
            opts.precision = precision.parse()?;
        }
        if let Some(lp_path) = req.lp_path.as_deref() {
            opts.lp_path = lp_path.parse()?;
        }
        opts
    };
    let timeout = req.timeout_ms.map(Duration::from_millis).or(default_timeout);
    match req.verb.as_str() {
        verb::SOLVE => {
            let raw = req.instance.as_ref().ok_or("solve needs an `instance`")?;
            let inst = Instance::new(raw.g, raw.jobs.clone())
                .map_err(|e| format!("invalid instance: {e}"))?;
            let method: Method = req.method.as_deref().unwrap_or("auto").parse()?;
            Ok(Work::Solve {
                inst,
                method,
                opts,
                seed: req.seed,
                timeout,
                include_schedule: req.include_schedule.unwrap_or(false),
            })
        }
        verb::BATCH => {
            let raw = req.instances.as_ref().ok_or("batch needs `instances`")?;
            let mut instances = Vec::with_capacity(raw.len());
            for (i, r) in raw.iter().enumerate() {
                instances.push(
                    Instance::new(r.g, r.jobs.clone())
                        .map_err(|e| format!("invalid instance at index {i}: {e}"))?,
                );
            }
            Ok(Work::Batch { instances, opts, timeout })
        }
        verb::OPEN => {
            let raw = req.instance.as_ref().ok_or("open needs an `instance`")?;
            let inst = Instance::new(raw.g, raw.jobs.clone())
                .map_err(|e| format!("invalid instance: {e}"))?;
            if req.method.as_deref().is_some_and(|m| m != "auto" && m != "nested") {
                return Err("sessions always solve on the nested path; omit `method`".into());
            }
            Ok(Work::Open {
                inst,
                opts,
                timeout,
                include_schedule: req.include_schedule.unwrap_or(false),
            })
        }
        verb::AMEND => {
            let session = req.session.ok_or("amend needs a `session` id")?;
            let delta = req.delta.clone().ok_or("amend needs a `delta`")?;
            if delta.is_empty() {
                return Err("amend `delta` has no ops".into());
            }
            Ok(Work::Amend {
                session,
                delta,
                timeout,
                include_schedule: req.include_schedule.unwrap_or(false),
            })
        }
        other => Err(format!("verb '{other}' is not admittable")),
    }
}

/// Evict sessions idle past the TTL. Called eagerly on session verbs
/// and `stats`, and periodically by reactor 0; counts each eviction
/// under `serve.sessions_expired`.
pub(crate) fn sweep_sessions(shared: &Shared) {
    let ttl = shared.cfg.session_ttl;
    let mut table = shared.sessions.lock().expect("sessions lock");
    let expired: Vec<u64> =
        table.iter().filter(|(_, e)| e.touched.elapsed() > ttl).map(|(&id, _)| id).collect();
    for id in expired {
        if let Some(entry) = table.remove(&id) {
            shared.shards[entry.shard].engine.close_session(entry.engine);
            shared.metrics.session_expired();
        }
    }
}

/// Force-close every live session during the shutdown drain; counts
/// each under `serve.sessions_evicted`.
pub(crate) fn drain_sessions(shared: &Shared) {
    let mut table = shared.sessions.lock().expect("sessions lock");
    for (_, entry) in table.drain() {
        shared.shards[entry.shard].engine.close_session(entry.engine);
        shared.metrics.session_evicted();
    }
}

/// How many slow-request entries a `stats` reply carries (the event
/// log retains more; this bounds the frame size).
const SLOW_REPLY_LIMIT: usize = 8;

/// The merged stats plane: one snapshot summing every router shard,
/// plus per-shard sections and the recent slow-request list.
pub(crate) fn snapshot_all(shared: &Shared) -> crate::protocol::StatsReply {
    let engines: Vec<&Engine> = shared.shards.iter().map(|s| &s.engine).collect();
    let queue_len: usize = shared.shards.iter().map(|s| s.queue.len()).sum();
    let queue_capacity: usize = shared.shards.iter().map(|s| s.queue.capacity()).sum();
    let (sessions_open, sessions_by_shard) = {
        let table = shared.sessions.lock().expect("sessions lock");
        let mut by_shard = vec![0u64; shared.shards.len()];
        for entry in table.values() {
            if let Some(n) = by_shard.get_mut(entry.shard) {
                *n += 1;
            }
        }
        (table.len() as u64, by_shard)
    };
    let shards = shared
        .shards
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let cache = s.engine.cache_stats();
            let rates = shared.shard_requests[i].rates();
            crate::protocol::ShardStats {
                shard: i as u64,
                queue_len: s.queue.len() as u64,
                queue_capacity: s.queue.capacity() as u64,
                sessions_open: sessions_by_shard[i],
                cache_hits: cache.hits,
                cache_misses: cache.misses,
                requests: shared.shard_requests[i].get(),
                rate_10s: rates.rate_10s,
                rate_1m: rates.rate_1m,
                rate_5m: rates.rate_5m,
            }
        })
        .collect();
    let slow = shared
        .events
        .recent(SLOW_REPLY_LIMIT)
        .into_iter()
        .map(|e| crate::protocol::SlowRequest {
            request: e.id,
            verb: e.verb,
            shard: e.shard,
            total_ms: e.total_ms,
            error: e.error,
            stages: e
                .stages
                .into_iter()
                .map(|(stage, ms)| crate::protocol::StageTiming { stage, ms })
                .collect(),
        })
        .collect();
    shared.metrics.snapshot_merged(
        &engines,
        shared.started,
        queue_len,
        queue_capacity,
        sessions_open,
        shared.shards.len() as u64,
        shards,
        slow,
    )
}

/// `close` is answered inline (no solve happens): drop the session from
/// both tables. Closing an unknown (or already-evicted) session is the
/// typed [`kind::UNKNOWN_SESSION`] error so clients can distinguish
/// "closed twice" from "never opened".
pub(crate) fn handle_close(shared: &Shared, req: &Request) -> Response {
    sweep_sessions(shared);
    let Some(session) = req.session else {
        shared.metrics.bad_request();
        return Response::error(
            req.id,
            Some(verb::CLOSE),
            kind::BAD_REQUEST,
            "close needs a `session` id".into(),
        );
    };
    let entry = shared.sessions.lock().expect("sessions lock").remove(&session);
    let closed = entry.is_some_and(|e| shared.shards[e.shard].engine.close_session(e.engine));
    if closed {
        shared.metrics.session_closed();
        Response::ok(req.id, verb::CLOSE).with_version(PROTOCOL_VERSION).with_session(session)
    } else {
        Response::error(
            req.id,
            Some(verb::CLOSE),
            kind::UNKNOWN_SESSION,
            format!("session {session} is not open"),
        )
        .with_version(PROTOCOL_VERSION)
    }
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, shard_idx: usize) {
    while let Some(job) = shared.shards[shard_idx].queue.pop() {
        if shared.cfg.delay_ms > 0 {
            thread::sleep(Duration::from_millis(shared.cfg.delay_ms));
        }
        let Job { id, work, conn, seq, reply_to, admitted, trace } = job;
        let was_open = matches!(work, Work::Open { .. });
        // Execute under a collector carrying the request trace: spans
        // dropping anywhere in the solve (including on pool and budget
        // helper threads, which re-install this collector) leave their
        // per-stage breadcrumbs on it. The engine's own `observed`
        // wrapper keeps the trace attached when it swaps collectors.
        let collector =
            Collector::new(Arc::clone(shared.metrics.registry())).with_request(Arc::clone(&trace));
        let resp = atsched_obs::with_collector(collector, || match work {
            Work::Solve { inst, method, opts, seed, timeout, include_schedule } => execute_solve(
                shared,
                shard_idx,
                id,
                inst,
                method,
                opts,
                seed,
                timeout,
                include_schedule,
            ),
            Work::Batch { instances, opts, timeout } => {
                execute_batch(shared, shard_idx, id, instances, opts, timeout)
            }
            Work::Open { inst, opts, timeout, include_schedule } => {
                execute_open(shared, shard_idx, id, inst, opts, timeout, include_schedule)
            }
            Work::Amend { session, delta, timeout, include_schedule } => {
                execute_amend(shared, id, session, delta, timeout, include_schedule)
            }
        });
        if was_open {
            // The cap reservation taken at admission is now either a
            // real table entry or moot.
            shared.open_reservations.fetch_sub(1, Ordering::SeqCst);
        }
        let total_ms = admitted.elapsed().as_secs_f64() * 1e3;
        let deadline_overrun = resp.error_kind() == Some(kind::TIMED_OUT);
        let solve_error = matches!(resp.error_kind(), Some(kind::INFEASIBLE) | Some(kind::FAILED));
        shared.metrics.finished(total_ms, deadline_overrun, solve_error);
        // Slow or errored requests keep their full trace in the
        // bounded event log; everything else is counters only.
        if resp.error.is_some() || total_ms > shared.cfg.slow_ms as f64 {
            let error = resp.error.as_ref().map(|e| e.kind.clone());
            shared.events.push(RequestEvent::from_trace(&trace, total_ms, error));
        }
        let resp = resp.with_request(trace.id());
        // Stale replies (deadline-preempted, connection gone) are
        // dropped by the reactor's seq check; nothing to do here.
        let _ = reply_to.send(Msg::Reply { conn, seq, resp: Box::new(resp) });
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_solve(
    shared: &Arc<Shared>,
    shard_idx: usize,
    id: Option<u64>,
    inst: Instance,
    method: Method,
    opts: SolverOptions,
    seed: Option<u64>,
    timeout: Option<Duration>,
    include_schedule: bool,
) -> Response {
    let start = Instant::now();
    // Auto-dispatch mirrors the `Solve` facade: nested when laminar.
    let method = match method {
        Method::Auto => {
            if inst.check_laminar().is_ok() {
                Method::Nested
            } else {
                Method::General
            }
        }
        other => other,
    };
    if method == Method::Nested {
        // Nested solves go through the shard engine so repeats across
        // requests (and clients) hit its content-keyed cache — and the
        // consistent-hash routing sends repeats to the same shard.
        let outcome = match timeout {
            None => shared.shards[shard_idx].engine.solve_one(&inst, &opts),
            Some(budget) => {
                let engine_shared = Arc::clone(shared);
                let inst = inst.clone();
                let opts = opts.clone();
                match with_budget(
                    move || engine_shared.shards[shard_idx].engine.solve_one(&inst, &opts),
                    budget,
                ) {
                    Ok(outcome) => outcome,
                    Err(Interrupt::TimedOut) => Outcome::TimedOut,
                    Err(Interrupt::Panicked(msg)) => Outcome::Failed(msg),
                }
            }
        };
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Outcome::Solved(item) => Response::ok_solve(
                id,
                SolveReply {
                    active_slots: item.result.schedule.active_time() as u64,
                    method: "nested".into(),
                    certified_ratio: Some(item.result.stats.opened_over_lp),
                    cached: item.cached,
                    elapsed_ms,
                    schedule: include_schedule.then(|| item.result.schedule.clone()),
                },
            ),
            Outcome::Infeasible => Response::error(
                id,
                Some(verb::SOLVE),
                kind::INFEASIBLE,
                "instance is infeasible".into(),
            ),
            Outcome::TimedOut => deadline_response(id, verb::SOLVE, timeout),
            Outcome::Failed(msg) => Response::error(id, Some(verb::SOLVE), kind::FAILED, msg),
        }
    } else {
        let mut solve = Solve::new(&inst).method(method).options(opts);
        if let Some(seed) = seed {
            solve = solve.seed(seed);
        }
        if let Some(budget) = timeout {
            solve = solve.timeout(budget);
        }
        let result = solve.run();
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        match result {
            Ok(outcome) => Response::ok_solve(
                id,
                SolveReply {
                    active_slots: outcome.active_time() as u64,
                    method: outcome.method_label().into(),
                    certified_ratio: outcome.certified_ratio(),
                    cached: false,
                    elapsed_ms,
                    schedule: include_schedule.then(|| outcome.schedule().clone()),
                },
            ),
            Err(Error::Infeasible) => Response::error(
                id,
                Some(verb::SOLVE),
                kind::INFEASIBLE,
                "instance is infeasible".into(),
            ),
            Err(Error::TimedOut) => deadline_response(id, verb::SOLVE, timeout),
            Err(Error::Instance(e)) => {
                Response::error(id, Some(verb::SOLVE), kind::BAD_REQUEST, e.to_string())
            }
            Err(e) => Response::error(id, Some(verb::SOLVE), kind::FAILED, e.to_string()),
        }
    }
}

fn execute_batch(
    shared: &Arc<Shared>,
    shard_idx: usize,
    id: Option<u64>,
    instances: Vec<Instance>,
    opts: SolverOptions,
    timeout: Option<Duration>,
) -> Response {
    let result = match timeout {
        None => shared.shards[shard_idx].engine.solve_batch(&instances, &opts),
        Some(budget) => {
            let engine_shared = Arc::clone(shared);
            let opts = opts.clone();
            match with_budget(
                move || engine_shared.shards[shard_idx].engine.solve_batch(&instances, &opts),
                budget,
            ) {
                Ok(result) => result,
                Err(Interrupt::TimedOut) => return deadline_response(id, verb::BATCH, timeout),
                Err(Interrupt::Panicked(msg)) => {
                    return Response::error(id, Some(verb::BATCH), kind::FAILED, msg)
                }
            }
        }
    };
    let items = result
        .outcomes
        .iter()
        .enumerate()
        .map(|(index, outcome)| BatchItemReply {
            index: index as u64,
            outcome: outcome.label().to_string(),
            active_slots: outcome.as_solved().map(|s| s.result.schedule.active_time() as u64),
            cached: outcome.as_solved().map(|s| s.cached),
            message: match outcome {
                Outcome::Failed(msg) => Some(msg.clone()),
                _ => None,
            },
        })
        .collect();
    let report = &result.report;
    Response::ok_batch(
        id,
        BatchReply {
            items,
            total: report.total as u64,
            solved: report.solved as u64,
            infeasible: report.infeasible as u64,
            timed_out: report.timed_out as u64,
            failed: report.failed as u64,
            wall_clock_ms: report.wall_clock_ms,
            cache_hits: report.cache.hits,
            cache_misses: report.cache.misses,
        },
    )
}

/// Shape a session solve outcome into the reply frame. Used by both
/// `open` and `amend`; errors still echo the session id so the client
/// knows the session survives (it does — an infeasible amendment keeps
/// the session open and amendable).
fn session_outcome_response(
    id: Option<u64>,
    verb_name: &'static str,
    session: u64,
    outcome: Outcome,
    elapsed_ms: f64,
    include_schedule: bool,
    timeout: Option<Duration>,
) -> Response {
    let resp = match outcome {
        Outcome::Solved(item) => Response {
            solve: Some(SolveReply {
                active_slots: item.result.schedule.active_time() as u64,
                method: "nested".into(),
                certified_ratio: Some(item.result.stats.opened_over_lp),
                cached: item.cached,
                elapsed_ms,
                schedule: include_schedule.then(|| item.result.schedule.clone()),
            }),
            ..Response::ok(id, verb_name)
        },
        Outcome::Infeasible => Response::error(
            id,
            Some(verb_name),
            kind::INFEASIBLE,
            "instance is infeasible (the session stays open and amendable)".into(),
        ),
        Outcome::TimedOut => deadline_response(id, verb_name, timeout),
        Outcome::Failed(msg) => Response::error(id, Some(verb_name), kind::FAILED, msg),
    };
    resp.with_version(PROTOCOL_VERSION).with_session(session)
}

fn execute_open(
    shared: &Arc<Shared>,
    shard_idx: usize,
    id: Option<u64>,
    inst: Instance,
    opts: SolverOptions,
    timeout: Option<Duration>,
    include_schedule: bool,
) -> Response {
    sweep_sessions(shared);
    let start = Instant::now();
    let opened = match timeout {
        None => {
            let session = shared.shards[shard_idx].engine.open_session(inst, &opts);
            Ok((session.id(), session.outcome()))
        }
        Some(budget) => {
            let engine_shared = Arc::clone(shared);
            with_budget(
                move || {
                    let session = engine_shared.shards[shard_idx].engine.open_session(inst, &opts);
                    (session.id(), session.outcome())
                },
                budget,
            )
        }
    };
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    match opened {
        Ok((engine_id, outcome)) => {
            // Engine session ids are shard-local: allocate the
            // wire-visible id here, where uniqueness is global.
            let wire = shared.next_session.fetch_add(1, Ordering::SeqCst) + 1;
            shared.sessions.lock().expect("sessions lock").insert(
                wire,
                SessionEntry { shard: shard_idx, engine: engine_id, touched: Instant::now() },
            );
            shared.metrics.session_opened();
            session_outcome_response(
                id,
                verb::OPEN,
                wire,
                outcome,
                elapsed_ms,
                include_schedule,
                timeout,
            )
        }
        // The budget thread keeps running detached on a timeout, so the
        // engine session it opens is unreachable wire-side; it was
        // never registered, and the engine table drops it with the
        // server. Opens are expected to fit their budget; this is the
        // honest failure mode.
        Err(Interrupt::TimedOut) => {
            deadline_response(id, verb::OPEN, timeout).with_version(PROTOCOL_VERSION)
        }
        Err(Interrupt::Panicked(msg)) => {
            Response::error(id, Some(verb::OPEN), kind::FAILED, msg).with_version(PROTOCOL_VERSION)
        }
    }
}

fn execute_amend(
    shared: &Arc<Shared>,
    id: Option<u64>,
    session: u64,
    delta: DeltaSpec,
    timeout: Option<Duration>,
    include_schedule: bool,
) -> Response {
    sweep_sessions(shared);
    let unknown = || {
        Response::error(
            id,
            Some(verb::AMEND),
            kind::UNKNOWN_SESSION,
            format!("session {session} is not open"),
        )
        .with_version(PROTOCOL_VERSION)
    };
    // Resolve the wire id to its owning shard. The reactor routed by
    // the table too, but this lookup is the authoritative one (the
    // entry may have expired or closed while the job sat queued).
    let entry = {
        let table = shared.sessions.lock().expect("sessions lock");
        table.get(&session).map(|e| (e.shard, e.engine))
    };
    let Some((shard, engine_id)) = entry else {
        return unknown();
    };
    let start = Instant::now();
    // `None` inside the budget result means the session vanished
    // between the table check and the engine lookup (a concurrent
    // `close` won the race) — that is "unknown session", not an error.
    let amended = match timeout {
        None => {
            Ok(shared.shards[shard].engine.session(engine_id).map(|s| s.amend(&delta.to_delta())))
        }
        Some(budget) => {
            let engine_shared = Arc::clone(shared);
            with_budget(
                move || {
                    engine_shared.shards[shard]
                        .engine
                        .session(engine_id)
                        .map(|s| s.amend(&delta.to_delta()))
                },
                budget,
            )
        }
    };
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    match amended {
        Ok(None) => unknown(),
        Ok(Some(Ok(outcome))) => {
            if let Some(e) = shared.sessions.lock().expect("sessions lock").get_mut(&session) {
                e.touched = Instant::now();
            }
            session_outcome_response(
                id,
                verb::AMEND,
                session,
                outcome,
                elapsed_ms,
                include_schedule,
                timeout,
            )
        }
        // A bad delta leaves the session exactly as it was.
        Ok(Some(Err(delta_err))) => {
            Response::error(id, Some(verb::AMEND), kind::BAD_REQUEST, delta_err.to_string())
                .with_version(PROTOCOL_VERSION)
                .with_session(session)
        }
        Err(Interrupt::TimedOut) => {
            deadline_response(id, verb::AMEND, timeout).with_version(PROTOCOL_VERSION)
        }
        Err(Interrupt::Panicked(msg)) => {
            Response::error(id, Some(verb::AMEND), kind::FAILED, msg).with_version(PROTOCOL_VERSION)
        }
    }
}

pub(crate) fn deadline_response(
    id: Option<u64>,
    verb_name: &str,
    timeout: Option<Duration>,
) -> Response {
    let budget = timeout.map(|t| t.as_millis()).unwrap_or(0);
    Response::error(
        id,
        Some(verb_name),
        kind::TIMED_OUT,
        format!("request exceeded its {budget} ms deadline"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_shapes() {
        let err = validate(&Request::new(verb::SOLVE), None).unwrap_err();
        assert!(err.contains("instance"), "{err}");

        let bad = Request {
            instance: Some(Instance { g: 0, jobs: Vec::new() }),
            ..Request::new(verb::SOLVE)
        };
        let err = validate(&bad, None).unwrap_err();
        assert!(err.contains("invalid instance"), "{err}");

        let inst = Instance::new(2, vec![atsched_core::instance::Job::new(0, 4, 2)]).unwrap();
        let err = validate(&Request::solve(&inst).with_method("fancy"), None).unwrap_err();
        assert!(err.contains("unknown method"), "{err}");
        let err = validate(&Request::solve(&inst).with_backend("gpu"), None).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        let err = validate(&Request::solve(&inst).with_shard("maybe"), None).unwrap_err();
        assert!(err.contains("unknown shard mode"), "{err}");
        let err = validate(&Request::solve(&inst).with_precision("float"), None).unwrap_err();
        assert!(err.contains("unknown precision mode"), "{err}");

        // Defaults flow through.
        match validate(&Request::solve(&inst), Some(Duration::from_secs(1))).unwrap() {
            Work::Solve { timeout, method, include_schedule, opts, .. } => {
                assert_eq!(timeout, Some(Duration::from_secs(1)));
                assert_eq!(method, Method::Auto);
                assert!(!include_schedule);
                assert_eq!(opts.shard, atsched_core::solver::ShardMode::Auto);
                assert_eq!(opts.precision, atsched_core::solver::PrecisionMode::Hybrid);
            }
            _ => panic!("expected solve work"),
        }

        // Explicit shard modes parse onto the options.
        match validate(&Request::solve(&inst).with_shard("force"), None).unwrap() {
            Work::Solve { opts, .. } => {
                assert_eq!(opts.shard, atsched_core::solver::ShardMode::Force);
            }
            _ => panic!("expected solve work"),
        }

        // Explicit precision modes parse onto the options.
        match validate(&Request::solve(&inst).with_precision("f64-unchecked"), None).unwrap() {
            Work::Solve { opts, .. } => {
                assert_eq!(opts.precision, atsched_core::solver::PrecisionMode::F64Unchecked);
            }
            _ => panic!("expected solve work"),
        }
    }

    #[test]
    fn work_shares_split_evenly_with_a_floor() {
        assert_eq!((0..3).map(|i| share(7, 3, i)).collect::<Vec<_>>(), vec![3, 2, 2]);
        assert_eq!((0..4).map(|i| share(8, 4, i)).collect::<Vec<_>>(), vec![2, 2, 2, 2]);
        assert_eq!((0..4).map(|i| share(1, 4, i)).sum::<usize>(), 1);
    }

    /// A payload whose serialization always fails, standing in for a
    /// response the encoder cannot represent. (A real [`Response`]
    /// never fails with the vendored writer, so the regression test
    /// injects the failure at the trait boundary `encode_frame` uses.)
    struct Unserializable;

    impl serde::ser::Serialize for Unserializable {
        fn serialize<S: serde::ser::Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
            Err(serde::ser::Error::custom("injected serialization failure"))
        }
    }

    #[test]
    fn serialization_failure_sends_fallback_frame_instead_of_panicking() {
        let metrics = ServerMetrics::default();

        // Healthy path: no fallback, no counter movement.
        let ok = Response::ok(Some(3), verb::HEALTH);
        let line = encode_frame(&ok, &metrics);
        assert!(line.ends_with('\n'));
        assert!(line.contains("\"ok\""));
        assert_eq!(metrics.registry().counter("serve.serialize_errors").get(), 0);

        // Failure path: the static fallback frame goes out and the
        // failure is counted — previously this was an `expect` panic
        // that took the whole connection handler down.
        let line = encode_frame(&Unserializable, &metrics);
        assert!(line.ends_with('\n'), "frames stay newline-terminated: {line:?}");
        assert_eq!(metrics.registry().counter("serve.serialize_errors").get(), 1);

        // The fallback frame is itself a well-formed error Response.
        let back: Response = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(back.status, "error");
        assert_eq!(back.id, None);
        let err = back.error.expect("fallback carries an error payload");
        assert_eq!(err.kind, kind::INTERNAL);
        assert!(err.message.contains("serialization"));
    }
}
