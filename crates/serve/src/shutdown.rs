//! Graceful-shutdown coordination.
//!
//! The `shutdown` verb follows a strict sequence:
//!
//! 1. The reactor that receives the verb flips the gate (first caller
//!    wins) and closes every shard's admission queue — from this
//!    instant new work is refused with `shutting_down`, while
//!    everything already admitted stays poppable.
//! 2. The coordinator (the thread inside [`Server::run`]) joins the
//!    solver workers; joining only returns once every queue is drained
//!    and every in-flight solve has been answered through its reactor.
//! 3. The coordinator evicts all live sessions, builds the final merged
//!    stats snapshot, and hands it back to the requester's reactor,
//!    which writes it as the `shutdown` response, acknowledges the
//!    flush, and lets the coordinator stop every event loop.
//!
//! A second `shutdown` while draining gets a `shutting_down` error —
//! exactly one requester receives the final snapshot.
//!
//! The gate itself is just the first-wins flag; the snapshot handoff
//! rides the server's coordinator channels ([`Server::run`]), not this
//! type.
//!
//! [`Server::run`]: crate::server::Server::run

use std::sync::atomic::{AtomicBool, Ordering};

/// One-shot drain gate shared by every thread of the server.
#[derive(Default)]
pub struct ShutdownGate {
    draining: AtomicBool,
}

impl ShutdownGate {
    /// Begin draining. Returns `true` for the first caller only; later
    /// callers get `false` (the service is already draining).
    pub fn begin(&self) -> bool {
        !self.draining.swap(true, Ordering::SeqCst)
    }

    /// True once [`begin`](Self::begin) has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flip the gate without caring about winner-ship (used when the
    /// server is shut down programmatically rather than via the verb).
    pub fn begin_silent(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_caller_wins() {
        let gate = ShutdownGate::default();
        assert!(!gate.is_draining());
        assert!(gate.begin(), "first begin wins");
        assert!(gate.is_draining());
        assert!(!gate.begin(), "second begin loses");
        assert!(gate.is_draining());
    }

    #[test]
    fn silent_begin_sets_the_flag_and_spoils_later_winners() {
        let gate = ShutdownGate::default();
        gate.begin_silent();
        assert!(gate.is_draining());
        assert!(!gate.begin(), "silent begin already started the drain");
    }
}
