//! Graceful-shutdown coordination.
//!
//! The `shutdown` verb follows a strict sequence:
//!
//! 1. The connection handler that receives the verb flips the gate
//!    (first caller wins) and closes the admission queue — from this
//!    instant new work is refused with `shutting_down`, while
//!    everything already admitted stays poppable.
//! 2. The accept loop notices the gate, stops accepting, and joins the
//!    workers; joining only returns once the queue is drained and every
//!    in-flight solve has been answered.
//! 3. The accept loop resolves the gate with the final stats snapshot;
//!    the waiting handler writes it as the `shutdown` response and
//!    acknowledges, at which point the server tears down the remaining
//!    connections and returns.
//!
//! A second `shutdown` while draining gets a `shutting_down` error —
//! exactly one requester receives the final snapshot.

use crate::protocol::StatsReply;
use crossbeam::channel::{self, Receiver, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Channels handed to the winning `shutdown` requester: where the final
/// snapshot will arrive, and where to acknowledge having written it.
pub struct DrainTicket {
    /// Resolved with the final stats snapshot after the drain.
    pub snapshot: Receiver<StatsReply>,
    /// Signal that the shutdown response hit the socket.
    pub written: Sender<()>,
}

struct Waiter {
    snapshot: Sender<StatsReply>,
    written: Receiver<()>,
}

/// One-shot drain gate shared by every thread of the server.
#[derive(Default)]
pub struct ShutdownGate {
    draining: AtomicBool,
    waiter: Mutex<Option<Waiter>>,
}

impl ShutdownGate {
    /// Begin draining. The first caller gets a [`DrainTicket`]; later
    /// callers get `None` (the service is already draining).
    pub fn begin(&self) -> Option<DrainTicket> {
        if self.draining.swap(true, Ordering::SeqCst) {
            return None;
        }
        let (snap_tx, snap_rx) = channel::bounded(1);
        let (ack_tx, ack_rx) = channel::bounded(1);
        *self.waiter.lock().expect("gate lock") =
            Some(Waiter { snapshot: snap_tx, written: ack_rx });
        Some(DrainTicket { snapshot: snap_rx, written: ack_tx })
    }

    /// True once [`begin`](Self::begin) has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Deliver the final snapshot to the waiting requester (if any) and
    /// give it `grace` to write the response before teardown proceeds.
    pub fn resolve(&self, snapshot: StatsReply, grace: Duration) {
        let waiter = self.waiter.lock().expect("gate lock").take();
        if let Some(waiter) = waiter {
            // The requester may have disconnected mid-drain; both the
            // send and the ack wait are best-effort.
            if waiter.snapshot.send(snapshot).is_ok() {
                let _ = waiter.written.recv_timeout(grace);
            }
        }
    }

    /// Flip the gate without a waiting requester (used when the server
    /// is shut down programmatically rather than via the verb).
    pub fn begin_silent(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_engine::{EngineTotals, Percentiles};

    fn snapshot() -> StatsReply {
        StatsReply {
            uptime_ms: 1.0,
            received: 5,
            bad_requests: 0,
            accepted: 4,
            rejected_overload: 1,
            rejected_shutdown: 0,
            completed: 4,
            solve_errors: 0,
            timed_out: 0,
            inflight: 0,
            queue_len: 0,
            queue_capacity: 8,
            cache_hits: 2,
            cache_misses: 2,
            cache_hit_rate: 0.5,
            cache_entries: 2,
            engine: EngineTotals::default(),
            latency_ms: Percentiles::default(),
            registry: atsched_obs::RegistrySnapshot::default(),
        }
    }

    #[test]
    fn first_caller_wins_and_receives_the_snapshot() {
        let gate = ShutdownGate::default();
        assert!(!gate.is_draining());
        let ticket = gate.begin().expect("first begin wins");
        assert!(gate.is_draining());
        assert!(gate.begin().is_none(), "second begin loses");

        // Ack from a helper thread so resolve()'s grace wait is satisfied
        // the way a live connection handler would.
        let writer = std::thread::spawn(move || {
            let got = ticket.snapshot.recv().unwrap();
            ticket.written.send(()).unwrap();
            got
        });
        gate.resolve(snapshot(), Duration::from_secs(5));
        assert_eq!(writer.join().unwrap().accepted, 4);
    }

    #[test]
    fn resolve_without_waiter_is_a_no_op() {
        let gate = ShutdownGate::default();
        gate.begin_silent();
        assert!(gate.is_draining());
        gate.resolve(snapshot(), Duration::from_millis(10)); // must not hang
    }
}
