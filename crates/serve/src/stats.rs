//! Service observability: lock-free request counters and a sliding
//! latency window, snapshotted into [`StatsReply`] frames.

use crate::protocol::StatsReply;
use atsched_engine::{Engine, Percentiles};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many recent end-to-end latencies the percentile window keeps.
/// Old samples are overwritten ring-buffer style, so `stats` reflects
/// recent behavior, not the whole process lifetime.
const LATENCY_WINDOW: usize = 4096;

/// Fixed-capacity ring of latency samples (milliseconds).
struct LatencyRing {
    samples: Vec<f64>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, ms: f64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(ms);
        } else {
            self.samples[self.next] = ms;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }
}

/// Request counters, all behind interior mutability so every connection
/// and worker thread shares one instance through an `Arc`.
pub struct ServerMetrics {
    received: AtomicU64,
    bad_requests: AtomicU64,
    accepted: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_shutdown: AtomicU64,
    completed: AtomicU64,
    solve_errors: AtomicU64,
    timed_out: AtomicU64,
    inflight: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            received: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            solve_errors: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing { samples: Vec::new(), next: 0 }),
        }
    }
}

impl ServerMetrics {
    /// A frame was read off a connection (well-formed or not).
    pub fn frame_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// A frame was rejected before admission.
    pub fn bad_request(&self) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered the admission queue.
    pub fn admitted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was shed because the queue was full.
    pub fn shed_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was refused because the service is draining.
    pub fn shed_shutdown(&self) {
        self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request finished with the given disposition.
    pub fn finished(&self, latency_ms: f64, deadline_overrun: bool, solve_error: bool) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        if deadline_overrun {
            self.timed_out.fetch_add(1, Ordering::Relaxed);
        }
        if solve_error {
            self.solve_errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latencies.lock().expect("latency lock").push(latency_ms);
    }

    /// Requests admitted but not yet answered.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Build a wire-ready snapshot of everything observable.
    pub fn snapshot(
        &self,
        engine: &Engine,
        started: Instant,
        queue_len: usize,
        queue_capacity: usize,
    ) -> StatsReply {
        let cache = engine.cache_stats();
        let latency_ms = {
            let ring = self.latencies.lock().expect("latency lock");
            Percentiles::from_samples(ring.samples.clone())
        };
        StatsReply {
            uptime_ms: started.elapsed().as_secs_f64() * 1e3,
            received: self.received.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            solve_errors: self.solve_errors.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            queue_len: queue_len as u64,
            queue_capacity: queue_capacity as u64,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_hit_rate: cache.hit_rate(),
            cache_entries: engine.cache_len() as u64,
            engine: engine.totals(),
            latency_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_engine::EngineConfig;

    #[test]
    fn counters_and_snapshot() {
        let m = ServerMetrics::default();
        m.frame_received();
        m.frame_received();
        m.bad_request();
        m.admitted();
        m.admitted();
        m.shed_overload();
        m.finished(2.0, false, false);
        m.finished(4.0, true, false);
        assert_eq!(m.inflight(), 0);

        let engine = Engine::new(EngineConfig::default());
        let snap = m.snapshot(&engine, Instant::now(), 3, 8);
        assert_eq!(snap.received, 2);
        assert_eq!(snap.bad_requests, 1);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected_overload, 1);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.timed_out, 1);
        assert_eq!(snap.queue_len, 3);
        assert_eq!(snap.queue_capacity, 8);
        assert!(snap.latency_ms.max >= 4.0);
        // The snapshot survives the wire format.
        let line = serde_json::to_string(&snap).unwrap();
        let back: StatsReply = serde_json::from_str(&line).unwrap();
        assert_eq!(back.accepted, 2);
        assert_eq!(back.engine.solved, 0);
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = ServerMetrics::default();
        for i in 0..(LATENCY_WINDOW + 100) {
            m.admitted();
            m.finished(i as f64, false, false);
        }
        let ring = m.latencies.lock().unwrap();
        assert_eq!(ring.samples.len(), LATENCY_WINDOW);
    }
}
