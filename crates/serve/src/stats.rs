//! Service observability, backed by the shared [`atsched_obs`]
//! registry.
//!
//! The server and its engine write into one [`Registry`]: request
//! counters land under `serve.*`, solver internals (simplex pivots,
//! Dinic augmentations, stage spans) under their own prefixes, and the
//! `stats` verb ships the whole registry snapshot over the wire
//! alongside the typed [`StatsReply`] fields.

use crate::protocol::{ShardStats, SlowRequest, StatsReply};
use atsched_engine::{Engine, Percentiles};
use atsched_obs::{
    Counter, Gauge, HistogramSnapshot, Registry, WindowedCounter, WindowedHistogram,
};
use std::sync::Arc;
use std::time::Instant;

/// Request counters, all interned in the shared registry so every
/// connection and worker thread shares one instance through an `Arc`.
///
/// The hot instruments are resolved once at construction: emission is a
/// plain atomic bump, never a name lookup. The request-plane
/// instruments (`received`, `completed`, the latency histogram) carry
/// windowed views, so `stats` and the scrape surface report 10s/1m/5m
/// rates and windowed percentiles next to the lifetime values; solver
/// counters stay plain.
pub struct ServerMetrics {
    registry: Arc<Registry>,
    received: Arc<WindowedCounter>,
    bad_requests: Arc<Counter>,
    accepted: Arc<Counter>,
    rejected_overload: Arc<Counter>,
    rejected_shutdown: Arc<Counter>,
    completed: Arc<WindowedCounter>,
    solve_errors: Arc<Counter>,
    serialize_errors: Arc<Counter>,
    timed_out: Arc<Counter>,
    sessions_opened: Arc<Counter>,
    sessions_closed: Arc<Counter>,
    sessions_expired: Arc<Counter>,
    sessions_evicted: Arc<Counter>,
    deadline_preempts: Arc<Counter>,
    inflight: Arc<Gauge>,
    /// End-to-end latency (admission → response): lifetime histogram
    /// plus the 10s/1m/5m windowed view.
    latency: Arc<WindowedHistogram>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new(Arc::new(Registry::new()))
    }
}

impl ServerMetrics {
    /// Metrics writing into `registry` under the `serve.*` prefix.
    pub fn new(registry: Arc<Registry>) -> Self {
        ServerMetrics {
            received: registry.windowed_counter("serve.received"),
            bad_requests: registry.counter("serve.bad_requests"),
            accepted: registry.counter("serve.accepted"),
            rejected_overload: registry.counter("serve.rejected_overload"),
            rejected_shutdown: registry.counter("serve.rejected_shutdown"),
            completed: registry.windowed_counter("serve.completed"),
            solve_errors: registry.counter("serve.solve_errors"),
            serialize_errors: registry.counter("serve.serialize_errors"),
            timed_out: registry.counter("serve.timed_out"),
            sessions_opened: registry.counter("serve.sessions_opened"),
            sessions_closed: registry.counter("serve.sessions_closed"),
            sessions_expired: registry.counter("serve.sessions_expired"),
            sessions_evicted: registry.counter("serve.sessions_evicted"),
            deadline_preempts: registry.counter("serve.deadline_preempts"),
            inflight: registry.gauge("serve.inflight"),
            latency: registry.windowed_histogram("serve.latency_ms"),
            registry,
        }
    }

    /// The registry this instance writes into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A frame was read off a connection (well-formed or not).
    pub fn frame_received(&self) {
        self.received.inc();
    }

    /// A frame was rejected before admission.
    pub fn bad_request(&self) {
        self.bad_requests.inc();
    }

    /// A request entered the admission queue.
    pub fn admitted(&self) {
        self.accepted.inc();
        self.inflight.add(1);
    }

    /// A request was shed because the queue was full.
    pub fn shed_overload(&self) {
        self.rejected_overload.inc();
    }

    /// A request was refused because the service is draining.
    pub fn shed_shutdown(&self) {
        self.rejected_shutdown.inc();
    }

    /// A response failed to serialize and a fallback frame was sent
    /// in its place.
    pub fn serialize_error(&self) {
        self.serialize_errors.inc();
    }

    /// An incremental session was opened.
    pub fn session_opened(&self) {
        self.sessions_opened.inc();
    }

    /// A session was closed by explicit client request.
    pub fn session_closed(&self) {
        self.sessions_closed.inc();
    }

    /// An idle session was evicted by the TTL sweep.
    pub fn session_expired(&self) {
        self.sessions_expired.inc();
    }

    /// A live session was force-closed by the shutdown drain.
    pub fn session_evicted(&self) {
        self.sessions_evicted.inc();
    }

    /// A reactor answered `timed_out` for a request whose worker had
    /// not replied by the deadline (plus slack).
    pub fn deadline_preempt(&self) {
        self.deadline_preempts.inc();
    }

    /// An admitted request finished with the given disposition.
    pub fn finished(&self, latency_ms: f64, deadline_overrun: bool, solve_error: bool) {
        self.completed.inc();
        self.inflight.add(-1);
        if deadline_overrun {
            self.timed_out.inc();
        }
        if solve_error {
            self.solve_errors.inc();
        }
        self.latency.record(latency_ms);
    }

    /// Requests admitted but not yet answered.
    pub fn inflight(&self) -> u64 {
        self.inflight.get().max(0) as u64
    }

    /// Build a wire-ready snapshot of everything observable for a
    /// single-engine server (the pre-router shape): a thin wrapper over
    /// [`snapshot_merged`](Self::snapshot_merged).
    pub fn snapshot(
        &self,
        engine: &Engine,
        started: Instant,
        queue_len: usize,
        queue_capacity: usize,
    ) -> StatsReply {
        self.snapshot_merged(
            &[engine],
            started,
            queue_len,
            queue_capacity,
            0,
            1,
            Vec::new(),
            Vec::new(),
        )
    }

    /// Build a wire-ready snapshot merged across every router shard:
    /// cache and outcome totals are summed over the shard engines,
    /// queue figures are the caller's totals, and the server-level
    /// counters come from the one registry every shard writes into.
    /// The caller supplies the per-shard sections and the recent
    /// slow-request list (it owns the shard tables and event log).
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot_merged(
        &self,
        engines: &[&Engine],
        started: Instant,
        queue_len: usize,
        queue_capacity: usize,
        sessions_open: u64,
        router_workers: u64,
        shards: Vec<ShardStats>,
        slow: Vec<SlowRequest>,
    ) -> StatsReply {
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut evictions = 0u64;
        let mut entries = 0u64;
        let mut totals = atsched_engine::EngineTotals::default();
        for engine in engines {
            let cache = engine.cache_stats();
            hits += cache.hits;
            misses += cache.misses;
            evictions += cache.evictions;
            entries += engine.cache_len() as u64;
            let t = engine.totals();
            totals.solved += t.solved;
            totals.infeasible += t.infeasible;
            totals.timed_out += t.timed_out;
            totals.failed += t.failed;
        }
        let hit_rate = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
        // Mirror externally-sourced cache totals into gauges so the
        // registry snapshot is self-contained for generic consumers.
        self.registry.gauge("engine.cache.hits").set(hits as i64);
        self.registry.gauge("engine.cache.misses").set(misses as i64);
        self.registry.gauge("engine.cache.evictions").set(evictions as i64);
        self.registry.gauge("engine.cache.entries").set(entries as i64);
        StatsReply {
            uptime_ms: started.elapsed().as_secs_f64() * 1e3,
            received: self.received.get(),
            bad_requests: self.bad_requests.get(),
            accepted: self.accepted.get(),
            rejected_overload: self.rejected_overload.get(),
            rejected_shutdown: self.rejected_shutdown.get(),
            completed: self.completed.get(),
            solve_errors: self.solve_errors.get(),
            timed_out: self.timed_out.get(),
            inflight: self.inflight(),
            queue_len: queue_len as u64,
            queue_capacity: queue_capacity as u64,
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: hit_rate,
            cache_entries: entries,
            sessions_open,
            router_workers,
            shards,
            slow,
            engine: totals,
            latency_ms: Percentiles::from_snapshot(&HistogramSnapshot::of(self.latency.lifetime())),
            registry: self.registry.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_engine::EngineConfig;

    #[test]
    fn counters_and_snapshot() {
        let m = ServerMetrics::default();
        m.frame_received();
        m.frame_received();
        m.bad_request();
        m.admitted();
        m.admitted();
        m.shed_overload();
        m.finished(2.0, false, false);
        m.finished(4.0, true, false);
        assert_eq!(m.inflight(), 0);

        let engine = Engine::new(EngineConfig::default());
        let snap = m.snapshot(&engine, Instant::now(), 3, 8);
        assert_eq!(snap.received, 2);
        assert_eq!(snap.bad_requests, 1);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected_overload, 1);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.timed_out, 1);
        assert_eq!(snap.queue_len, 3);
        assert_eq!(snap.queue_capacity, 8);
        assert_eq!(snap.latency_ms.max, 4.0);
        // The registry snapshot carries the same counters.
        assert_eq!(snap.registry.counter("serve.received"), Some(2));
        assert_eq!(snap.registry.counter("serve.accepted"), Some(2));
        assert_eq!(snap.registry.gauge("serve.inflight"), Some(0));
        assert_eq!(snap.registry.histogram("serve.latency_ms").unwrap().count, 2);
        // Request-plane instruments opted into windowing, so the
        // snapshot carries their 10s/1m/5m sections too.
        assert!(snap.registry.window("serve.received").is_some());
        assert!(snap.registry.window("serve.completed").is_some());
        assert_eq!(snap.registry.window_histogram("serve.latency_ms").unwrap().w10s.count, 2);
        assert!(snap.shards.is_empty());
        assert!(snap.slow.is_empty());
        // The snapshot survives the wire format.
        let line = serde_json::to_string(&snap).unwrap();
        let back: StatsReply = serde_json::from_str(&line).unwrap();
        assert_eq!(back.accepted, 2);
        assert_eq!(back.engine.solved, 0);
        assert_eq!(back.registry, snap.registry);
    }

    #[test]
    fn shared_registry_merges_server_and_engine_metrics() {
        let registry = Arc::new(Registry::new());
        let engine = Engine::with_registry(EngineConfig::default(), Arc::clone(&registry));
        let m = ServerMetrics::new(Arc::clone(&registry));
        m.admitted();
        m.finished(1.0, false, false);
        engine.registry().counter("lp.pivots").add(7);
        let snap = m.snapshot(&engine, Instant::now(), 0, 4);
        assert_eq!(snap.registry.counter("serve.completed"), Some(1));
        assert_eq!(snap.registry.counter("lp.pivots"), Some(7));
        assert_eq!(snap.registry.gauge("engine.cache.entries"), Some(0));
    }
}
