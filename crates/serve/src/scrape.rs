//! The operational scrape surface: Prometheus-style text exposition of
//! the metric registry, served two ways —
//!
//! * the `metrics` verb on the main protocol port, answered inline by
//!   the reactor (it snapshots and renders without touching a solver
//!   pool), and
//! * an optional plain-HTTP listener (`ServerConfig::metrics_addr`) so
//!   an off-the-shelf scraper can `GET /metrics` without speaking the
//!   JSON-frame protocol. Any other path returns the full
//!   [`StatsReply`] snapshot as JSON.
//!
//! The exposition is the conventional flat text format: one
//! `name value` line per sample, metric names with dots replaced by
//! underscores and prefixed `atsched_`, histograms expanded into
//! `_count` / `_sum` / quantile-labelled lines, and windowed
//! instruments into `_rate_10s` / `_rate_1m` / `_rate_5m` lines.

use crate::server::{snapshot_all, Shared};
use atsched_obs::RegistrySnapshot;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// A metric name in exposition form: dots to underscores, `atsched_`
/// prefix (names are ASCII identifiers plus dots throughout the
/// workspace, so no further escaping is needed).
fn flat(name: &str) -> String {
    format!("atsched_{}", name.replace('.', "_"))
}

/// Render a registry snapshot as Prometheus-style text exposition.
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = flat(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = flat(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = flat(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", h.p50);
        let _ = writeln!(out, "{n}{{quantile=\"0.95\"}} {}", h.p95);
        let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", h.p99);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    for (name, w) in &snap.windows {
        let n = flat(name);
        let _ = writeln!(out, "# TYPE {n}_rate gauge");
        let _ = writeln!(out, "{n}_rate_10s {}", w.rate_10s);
        let _ = writeln!(out, "{n}_rate_1m {}", w.rate_1m);
        let _ = writeln!(out, "{n}_rate_5m {}", w.rate_5m);
    }
    for (name, wh) in &snap.window_histograms {
        let n = flat(name);
        for (label, s) in [("10s", &wh.w10s), ("1m", &wh.w1m), ("5m", &wh.w5m)] {
            let _ = writeln!(out, "{n}_w{label}_count {}", s.count);
            let _ = writeln!(out, "{n}_w{label}_p50 {}", s.p50);
            let _ = writeln!(out, "{n}_w{label}_p95 {}", s.p95);
            let _ = writeln!(out, "{n}_w{label}_p99 {}", s.p99);
        }
    }
    out
}

/// Handle to the background metrics listener: its bound address plus
/// the stop flag [`Server::run`](crate::server::Server::run) flips
/// during the drain.
pub(crate) struct MetricsListener {
    pub(crate) addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: JoinHandle<()>,
}

impl MetricsListener {
    /// Stop accepting scrapes and join the listener thread.
    pub(crate) fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.join.join();
    }
}

/// Spawn the scrape listener on `addr` (port 0 picks an ephemeral
/// port). Runs on its own blocking thread with a non-blocking accept
/// loop — scrapes never contend with the reactors or solver pools for
/// anything but the registry's interning locks.
pub(crate) fn spawn_metrics_listener(
    shared: Arc<Shared>,
    addr: &str,
) -> std::io::Result<MetricsListener> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = thread::spawn(move || {
        while !flag.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => serve_scrape(&shared, stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(25));
                }
                Err(_) => thread::sleep(Duration::from_millis(25)),
            }
        }
    });
    Ok(MetricsListener { addr, stop, join })
}

/// Answer one scrape connection: read the request line, pick the body
/// by path, write a minimal HTTP/1.0 response, close.
fn serve_scrape(shared: &Arc<Shared>, mut stream: std::net::TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    // Read until the end of the request head (or the buffer bound —
    // scrape requests are a single short GET line).
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let path = request_line.split_whitespace().nth(1).unwrap_or("/metrics").to_string();
    // Strictly read-only: eviction belongs to the router's periodic
    // sweep timer, not to whoever happens to scrape. A monitoring-only
    // observer must not mutate the session table (and a *never*-scraped
    // server must still expire sessions — see the no-traffic test).
    let snapshot = snapshot_all(shared);
    let (content_type, body) = if path == "/metrics" {
        ("text/plain; version=0.0.4", render_prometheus(&snapshot.registry))
    } else {
        let json = serde_json::to_string(&snapshot)
            .unwrap_or_else(|_| "{\"error\":\"snapshot serialization failed\"}".into());
        ("application/json", json)
    };
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_obs::Registry;

    #[test]
    fn exposition_flattens_names_and_expands_instruments() {
        let reg = Registry::new();
        reg.counter("serve.received").add(3);
        reg.gauge("serve.inflight").set(1);
        reg.histogram("serve.latency_ms").record(2.0);
        reg.windowed_counter("serve.completed").add(2);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("atsched_serve_received 3"), "{text}");
        assert!(text.contains("atsched_serve_inflight 1"), "{text}");
        assert!(text.contains("atsched_serve_latency_ms_count 1"), "{text}");
        assert!(text.contains("atsched_serve_latency_ms{quantile=\"0.95\"}"), "{text}");
        assert!(text.contains("atsched_serve_completed_rate_10s"), "{text}");
        // Every non-comment line is `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            assert!(name.starts_with("atsched_"), "{line}");
            parts.next().unwrap().parse::<f64>().expect(line);
            assert_eq!(parts.next(), None, "{line}");
        }
    }
}
