//! Bounded admission with explicit load shedding.
//!
//! The server never queues unboundedly: a request either takes one of
//! the `capacity` queue slots or is rejected *immediately* with a typed
//! `overloaded` response ([`Admit::Full`]). Shedding at admission keeps
//! tail latency bounded — a request that cannot start soon is cheaper
//! to retry than to let rot in an ever-growing queue — and keeps memory
//! use proportional to `capacity`, not to offered load.
//!
//! The queue is also the drain mechanism for graceful shutdown:
//! [`AdmissionQueue::close`] atomically stops admissions while letting
//! workers pop everything already accepted, so every admitted request
//! is answered before the server exits.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`AdmissionQueue::try_push`] rejected an item (the item is handed
/// back so the caller can answer its reply channel).
#[derive(Debug)]
pub enum Admit<T> {
    /// All `capacity` slots are taken: shed the request.
    Full(T),
    /// The queue is closed: the service is draining.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer queue with non-blocking
/// admission and blocking consumption.
pub struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    takers: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue with the given capacity (minimum 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            takers: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit an item without ever blocking: `Err(Full)` when all slots
    /// are taken (load shed), `Err(Closed)` after [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), Admit<T>> {
        let mut state = self.state.lock().expect("admission lock");
        if state.closed {
            return Err(Admit::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(Admit::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.takers.notify_one();
        Ok(())
    }

    /// Block until an item is available; `None` once the queue is closed
    /// *and* drained — the worker-loop exit condition.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("admission lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.takers.wait(state).expect("admission lock");
        }
    }

    /// Stop admissions; already-queued items remain poppable (drain).
    /// Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("admission lock").closed = true;
        self.takers.notify_all();
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("admission lock").items.len()
    }

    /// True when no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The load-shedding threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn sheds_when_full_and_rejects_when_closed() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(Admit::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "slot freed by pop");
        q.close();
        match q.try_push(4) {
            Err(Admit::Closed(4)) => {}
            other => panic!("expected Closed(4), got {other:?}"),
        }
        // Close drains: queued items stay poppable, then None.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert!(matches!(q.try_push(2), Err(Admit::Full(2))));
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_on_close() {
        let q = Arc::new(AdmissionQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop() {
                    got.push(item);
                }
                got
            })
        };
        thread::sleep(Duration::from_millis(20)); // let the consumer block
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        thread::sleep(Duration::from_millis(20));
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_producers_never_exceed_capacity() {
        let q = Arc::new(AdmissionQueue::new(3));
        let mut handles = Vec::new();
        for t in 0..8 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                let mut accepted = 0usize;
                for i in 0..50 {
                    if q.try_push(t * 1000 + i).is_ok() {
                        accepted += 1;
                    }
                    assert!(q.len() <= 3, "bounded at all times");
                }
                accepted
            }));
        }
        let accepted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(accepted >= 3, "at least the initial fills are admitted");
        q.close();
        let mut drained = 0;
        while q.pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, accepted, "every admitted item is drained");
    }
}
