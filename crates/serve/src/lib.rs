//! # atsched-serve — a long-running solve service
//!
//! This crate turns the batch-solve engine into a network service: an
//! event-driven TCP server speaking newline-delimited JSON, sharing
//! [`Engine`](atsched_engine::Engine) shards (and their content-keyed
//! solve caches) across every connection.
//!
//! Connections are served by [`atsched_net`] readiness reactors — a
//! single reactor thread multiplexes thousands of sockets — and solve
//! work is consistent-hashed across router shards ([`router`]), each
//! with its own engine and bounded admission queue. No async runtime,
//! no external dependencies.
//!
//! ## Service guarantees
//!
//! - **Bounded admission.** Solve work either takes a slot in a bounded
//!   queue or is shed *immediately* with a typed `overloaded` error
//!   ([`admission`]). The server never queues unboundedly.
//! - **Deadlines.** Every request gets a wall-clock budget (its own
//!   `timeout_ms` or the server default) enforced with the engine's
//!   watchdog isolation; overruns answer `timed_out`.
//! - **Fault containment.** A malformed frame poisons that request, not
//!   the connection; a panicking solve poisons that request, not the
//!   server.
//! - **Graceful shutdown.** The `shutdown` verb stops admissions,
//!   drains everything already accepted, and acks with the final stats
//!   snapshot ([`shutdown`]).
//! - **Observability.** The `stats` verb reports request counters,
//!   cache hit rate, windowed (10s/1m/5m) rates, per-shard sections,
//!   recent slow requests with per-stage timings, and end-to-end
//!   latency percentiles ([`stats`]); the `metrics` verb (and the
//!   optional `metrics_addr` HTTP listener) exposes the same registry
//!   as Prometheus-style text ([`scrape`]). Every admitted request
//!   carries a server-assigned trace id, echoed in its response.
//! - **Versioned evolution.** Requests may declare a protocol
//!   `version` (absent means v1); the v2 session verbs `open` /
//!   `amend` / `close` expose the engine's incremental re-solve, and
//!   v1 clients keep working against v2 servers unchanged
//!   ([`protocol::PROTOCOL_VERSION`]).
//!
//! ## Quick start
//!
//! ```no_run
//! use atsched_serve::{Client, Request, Server, ServerConfig};
//! use atsched_core::instance::{Instance, Job};
//!
//! // Spawn a server on an ephemeral port.
//! let server = Server::bind(ServerConfig::default().addr("127.0.0.1:0")).unwrap();
//! let handle = server.spawn();
//!
//! // Talk to it.
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let inst = Instance::new(2, vec![Job::new(0, 4, 2)]).unwrap();
//! let reply = client.solve(Request::solve(&inst).with_timeout_ms(5_000)).unwrap();
//! println!("{} active slots via {}", reply.active_slots, reply.method);
//!
//! // Drain and collect the final snapshot.
//! let final_stats = client.shutdown().unwrap();
//! assert_eq!(final_stats.inflight, 0);
//! handle.join().unwrap();
//! ```
//!
//! The wire protocol (verbs, fields, error kinds, example frames) is
//! documented in [`protocol`] and DESIGN.md §8.

pub mod admission;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod router;
pub mod scrape;
pub mod server;
pub mod shutdown;
pub mod stats;

pub use client::{Client, ClientError};
pub use loadgen::{run_load, LoadConfig, LoadReport, Payload};
pub use protocol::{
    kind, verb, BatchItemReply, BatchReply, DeltaSpec, ErrorInfo, Request, Response, ShardStats,
    SlowRequest, SolveReply, StageTiming, StatsReply, WindowChange, PROTOCOL_VERSION,
};
pub use scrape::render_prometheus;
pub use server::{Server, ServerConfig, ServerHandle};
