//! # atsched-serve — a long-running solve service
//!
//! This crate turns the batch-solve engine into a network service: a
//! threaded TCP server speaking newline-delimited JSON, sharing one
//! [`Engine`](atsched_engine::Engine) (and therefore one content-keyed
//! solve cache) across every connection.
//!
//! Built entirely on `std::net` + threads — no async runtime, no new
//! dependencies.
//!
//! ## Service guarantees
//!
//! - **Bounded admission.** Solve work either takes a slot in a bounded
//!   queue or is shed *immediately* with a typed `overloaded` error
//!   ([`admission`]). The server never queues unboundedly.
//! - **Deadlines.** Every request gets a wall-clock budget (its own
//!   `timeout_ms` or the server default) enforced with the engine's
//!   watchdog isolation; overruns answer `timed_out`.
//! - **Fault containment.** A malformed frame poisons that request, not
//!   the connection; a panicking solve poisons that request, not the
//!   server.
//! - **Graceful shutdown.** The `shutdown` verb stops admissions,
//!   drains everything already accepted, and acks with the final stats
//!   snapshot ([`shutdown`]).
//! - **Observability.** The `stats` verb reports request counters,
//!   cache hit rate, and end-to-end latency percentiles ([`stats`]).
//! - **Versioned evolution.** Requests may declare a protocol
//!   `version` (absent means v1); the v2 session verbs `open` /
//!   `amend` / `close` expose the engine's incremental re-solve, and
//!   v1 clients keep working against v2 servers unchanged
//!   ([`protocol::PROTOCOL_VERSION`]).
//!
//! ## Quick start
//!
//! ```no_run
//! use atsched_serve::{Client, Request, Server, ServerConfig};
//! use atsched_core::instance::{Instance, Job};
//!
//! // Spawn a server on an ephemeral port.
//! let server = Server::bind(ServerConfig::default().addr("127.0.0.1:0")).unwrap();
//! let handle = server.spawn();
//!
//! // Talk to it.
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let inst = Instance::new(2, vec![Job::new(0, 4, 2)]).unwrap();
//! let reply = client.solve(Request::solve(&inst).with_timeout_ms(5_000)).unwrap();
//! println!("{} active slots via {}", reply.active_slots, reply.method);
//!
//! // Drain and collect the final snapshot.
//! let final_stats = client.shutdown().unwrap();
//! assert_eq!(final_stats.inflight, 0);
//! handle.join().unwrap();
//! ```
//!
//! The wire protocol (verbs, fields, error kinds, example frames) is
//! documented in [`protocol`] and DESIGN.md §8.

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;
pub mod shutdown;
pub mod stats;

pub use client::{Client, ClientError};
pub use protocol::{
    kind, verb, BatchItemReply, BatchReply, DeltaSpec, ErrorInfo, Request, Response, SolveReply,
    StatsReply, WindowChange, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ServerHandle};
