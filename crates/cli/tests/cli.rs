//! Black-box tests for the `atsched` binary: batch exit-code contract
//! and a serve/client roundtrip over a real socket.

use nested_active_time::core::instance::{Instance, Job};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn atsched() -> Command {
    Command::new(env!("CARGO_BIN_EXE_atsched"))
}

/// Write `inst` as JSON under a test-unique name; returns the path.
fn write_instance(name: &str, inst: &Instance) -> PathBuf {
    let path = std::env::temp_dir().join(format!("atsched-cli-{}-{name}.json", std::process::id()));
    std::fs::write(&path, serde_json::to_string(inst).unwrap()).unwrap();
    path
}

fn small_instance() -> Instance {
    Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap()
}

/// Big enough that its exact LP cannot finish within a 1 ms budget.
fn heavy_instance() -> Instance {
    Instance::new(2, vec![Job::new(0, 5000, 100); 40]).unwrap()
}

fn infeasible_instance() -> Instance {
    Instance::new(1, vec![Job::new(0, 2, 1); 3]).unwrap()
}

#[test]
fn batch_exit_code_reflects_lost_work() {
    let heavy = write_instance("heavy", &heavy_instance());
    let heavy = heavy.to_str().unwrap();

    // A timed-out instance must fail the run...
    let out = atsched().args(["batch", heavy, "--timeout-ms", "1"]).output().unwrap();
    assert!(!out.status.success(), "timed-out batch must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("timed out"), "stderr names the cause: {stderr}");
    assert!(stderr.contains("--keep-going"), "stderr suggests the opt-out: {stderr}");

    // ...unless the caller opts out.
    let out =
        atsched().args(["batch", heavy, "--timeout-ms", "1", "--keep-going"]).output().unwrap();
    assert!(out.status.success(), "--keep-going restores exit 0");

    // A clean batch (including infeasible results — those are answers,
    // not failures) exits 0.
    let small = write_instance("small", &small_instance());
    let infeasible = write_instance("infeasible", &infeasible_instance());
    let out = atsched()
        .args(["batch", small.to_str().unwrap(), infeasible.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "infeasible is a result, not lost work");
}

/// Spawn `atsched serve` on an ephemeral port and return the child plus
/// the address it printed.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = atsched()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line.trim().strip_prefix("listening on ").expect("ready line").to_string();
    (child, addr)
}

#[test]
fn serve_and_client_roundtrip() {
    let (mut server, addr) = spawn_serve(&[]);

    let out = atsched().args(["client", &addr, "health"]).output().unwrap();
    assert!(out.status.success(), "health: {}", String::from_utf8_lossy(&out.stderr));

    let small = write_instance("roundtrip", &small_instance());
    let out = atsched().args(["client", &addr, "solve", small.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "solve: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("active slots"), "{stdout}");
    assert!(stdout.contains("nested"), "{stdout}");

    // Service errors surface as nonzero exits with the typed kind.
    let bad = write_instance("bad", &infeasible_instance());
    let out = atsched().args(["client", &addr, "solve", bad.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "infeasible solve must exit nonzero");
    assert!(String::from_utf8_lossy(&out.stderr).contains("infeasible"));

    let out = atsched().args(["client", &addr, "stats"]).output().unwrap();
    assert!(out.status.success());
    let stats = String::from_utf8_lossy(&out.stdout);
    assert!(stats.contains("\"accepted\""), "{stats}");

    let out = atsched().args(["client", &addr, "shutdown"]).output().unwrap();
    assert!(out.status.success(), "shutdown: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"completed\""));

    let status = server.wait().unwrap();
    assert!(status.success(), "server drains to exit 0");
}

#[test]
fn amend_command_drives_a_session_end_to_end() {
    let (mut server, addr) = spawn_serve(&[]);

    let inst = write_instance("session-base", &small_instance());
    let delta1 =
        std::env::temp_dir().join(format!("atsched-cli-{}-delta1.json", std::process::id()));
    std::fs::write(&delta1, r#"{"modify":[{"job":1,"release":0,"deadline":4}]}"#).unwrap();
    let delta2 =
        std::env::temp_dir().join(format!("atsched-cli-{}-delta2.json", std::process::id()));
    std::fs::write(&delta2, r#"{"add":[{"release":1,"deadline":3,"processing":1}]}"#).unwrap();

    let out = atsched()
        .args([
            "amend",
            &addr,
            inst.to_str().unwrap(),
            "--delta",
            delta1.to_str().unwrap(),
            "--delta",
            delta2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "amend: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("opened"), "{stdout}");
    assert!(stdout.contains("amend #1"), "{stdout}");
    assert!(stdout.contains("amend #2"), "{stdout}");

    // The session verbs via `client`: open prints an id usable later.
    let out = atsched().args(["client", &addr, "open", inst.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "open: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let session = stdout
        .split("session ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .expect("open prints the session id")
        .trim()
        .to_string();
    let out = atsched()
        .args(["client", &addr, "amend", &session, delta2.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "client amend: {}", String::from_utf8_lossy(&out.stderr));
    let out = atsched().args(["client", &addr, "close", &session]).output().unwrap();
    assert!(out.status.success(), "close: {}", String::from_utf8_lossy(&out.stderr));
    // Closing twice is the typed unknown-session error.
    let out = atsched().args(["client", &addr, "close", &session]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown_session"));

    let out = atsched().args(["client", &addr, "shutdown"]).output().unwrap();
    assert!(out.status.success());
    let status = server.wait().unwrap();
    assert!(status.success());
}
