//! `atsched` — command-line front end for the nested active-time
//! scheduling library.
//!
//! ```text
//! atsched generate --g 3 --horizon 24 --seed 7 --out inst.json
//! atsched solve inst.json [--float|--snap] [--polish] [--no-ceiling] [--schedule out.json] [--metrics]
//! atsched batch [inst.json ...] [--count N] [--workers N] [--no-cache] [--timeout-ms N] [--check]
//!               [--trace-out trace.json]
//! atsched opt inst.json [--parallel]
//! atsched greedy inst.json [--order ltr|rtl|rand]
//! atsched verify inst.json schedule.json
//! atsched gaps --family lemma51|gap2 --g 4
//! atsched serve [--addr HOST:PORT] [--workers N] [--queue N] [--router N] [--timeout-ms N]
//!               [--max-sessions N] [--session-ttl-ms N] [--metrics-addr HOST:PORT] [--slow-ms N]
//! atsched top ADDR [--interval-ms N] [--count N] [--no-clear]
//! atsched client ADDR solve|batch|open|amend|close|stats|health|shutdown ...
//! atsched amend ADDR inst.json --delta delta.json [--delta d2.json ...]
//! ```
//!
//! Argument parsing is deliberately dependency-free.

mod client_cmd;
mod serve_cmd;
mod top_cmd;

use nested_active_time::baselines::exact::{nested_opt, nested_opt_parallel};
use nested_active_time::baselines::greedy::ScanOrder;
use nested_active_time::baselines::incremental::minimal_feasible_fast;
use nested_active_time::core::instance::Instance;
use nested_active_time::core::schedule::Schedule;
use nested_active_time::core::solver::{
    solve_nested, LpBackend, LpPath, PrecisionMode, ShardMode, SolverOptions,
};
use nested_active_time::engine::solve_nested_sharded;
use nested_active_time::workloads::generators::{
    random_laminar, random_multi_root, LaminarConfig, MultiRootConfig,
};
use nested_active_time::workloads::io;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("opt") => cmd_opt(&args[1..]),
        Some("greedy") => cmd_greedy(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("gaps") => cmd_gaps(&args[1..]),
        Some("serve") => serve_cmd::cmd_serve(&args[1..]),
        Some("top") => top_cmd::cmd_top(&args[1..]),
        Some("client") => client_cmd::cmd_client(&args[1..]),
        Some("amend") => client_cmd::cmd_amend(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
atsched — nested active-time scheduling (SPAA 2022 reproduction)

USAGE:
  atsched generate [--g N] [--horizon N] [--seed N] [--roots N] [--gap N] [--child-percent N] [--out FILE]
  atsched solve INSTANCE.{json,txt} [--float|--snap] [--polish] [--no-ceiling] [--shard auto|off|force]
                [--precision hybrid|exact|f64-unchecked] [--lp-path auto|tree|simplex]
                [--schedule FILE] [--svg FILE] [--metrics]
  atsched batch [INSTANCE ...] [--count N] [--g N] [--horizon N] [--seed N] [--roots N]
                [--workers N] [--no-cache] [--timeout-ms N] [--float|--snap] [--polish]
                [--shard auto|off|force] [--precision hybrid|exact|f64-unchecked]
                [--lp-path auto|tree|simplex] [--check] [--keep-going] [--out FILE] [--trace-out FILE]
  atsched opt INSTANCE.json [--parallel]
  atsched greedy INSTANCE.json [--order ltr|rtl|rand]
  atsched verify INSTANCE.json SCHEDULE.json
  atsched gaps --family lemma51|gap2 --g N
  atsched serve [--addr HOST:PORT] [--workers N] [--queue N] [--router N] [--timeout-ms N]
                [--max-sessions N] [--session-ttl-ms N] [--delay-ms N]
                [--metrics-addr HOST:PORT] [--slow-ms N]
  atsched top ADDR [--interval-ms N] [--count N] [--no-clear]
  atsched client ADDR solve INSTANCE [--method auto|nested|general|greedy] [--backend exact|float|snap]
                 [--precision hybrid|exact|f64-unchecked] [--lp-path auto|tree|simplex] [--polish]
                 [--seed N] [--shard auto|off|force] [--timeout-ms N] [--schedule FILE]
  atsched client ADDR batch INSTANCE [INSTANCE ...]
  atsched client ADDR open INSTANCE | amend SESSION DELTA.json | close SESSION
  atsched client ADDR stats | metrics | health | shutdown
  atsched amend ADDR INSTANCE --delta DELTA.json [--delta DELTA.json ...] [--keep-open]
";

pub(crate) fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

pub(crate) fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

pub(crate) fn parse_num<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

/// Load an instance: `.txt` files use the plain-text exchange format,
/// everything else is JSON.
pub(crate) fn load(path: &str) -> Result<Instance, String> {
    if path.ends_with(".txt") {
        let body = std::fs::read_to_string(path).map_err(|e| format!("loading {path}: {e}"))?;
        io::instance_from_text(&body).map_err(|e| format!("parsing {path}: {e}"))
    } else {
        io::load_instance(Path::new(path)).map_err(|e| format!("loading {path}: {e}"))
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let base = LaminarConfig {
        g: parse_num(args, "--g", 3i64)?,
        horizon: parse_num(args, "--horizon", 24i64)?,
        child_percent: parse_num(args, "--child-percent", 70u32)?,
        ..Default::default()
    }
    .validated()
    .map_err(|e| e.to_string())?;
    let seed: u64 = parse_num(args, "--seed", 0u64)?;
    let roots: usize = parse_num(args, "--roots", 1usize)?;
    let inst = if roots > 1 {
        let cfg = MultiRootConfig { base, roots, gap: parse_num(args, "--gap", 1i64)? }
            .validated()
            .map_err(|e| e.to_string())?;
        random_multi_root(&cfg, seed)
    } else {
        random_laminar(&base, seed)
    };
    match flag_value(args, "--out") {
        Some(path) => {
            io::save_instance(&inst, Path::new(path)).map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {} ({} jobs, g = {}, horizon {:?})",
                path,
                inst.num_jobs(),
                inst.g,
                inst.horizon().unwrap()
            );
        }
        None => println!("{}", io::instance_to_json(&inst)),
    }
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    use atsched_obs as obs;
    use std::sync::Arc;

    let path = args.first().ok_or("solve needs an instance file")?;
    let inst = load(path)?;
    let mut opts = SolverOptions::exact();
    if has_flag(args, "--float") {
        opts.backend = LpBackend::Float;
    }
    if has_flag(args, "--snap") {
        opts.backend = LpBackend::FloatThenSnap;
    }
    if has_flag(args, "--polish") {
        opts.polish = true;
    }
    if has_flag(args, "--no-ceiling") {
        opts.use_ceiling = false;
    }
    if let Some(mode) = flag_value(args, "--shard") {
        opts.shard = mode.parse::<ShardMode>()?;
    }
    if let Some(mode) = flag_value(args, "--precision") {
        opts.precision = mode.parse::<PrecisionMode>()?;
    }
    if let Some(path) = flag_value(args, "--lp-path") {
        opts.lp_path = path.parse::<LpPath>()?;
    }
    let metrics = has_flag(args, "--metrics");
    let registry = Arc::new(obs::Registry::new());
    let result = if metrics {
        let collector = obs::Collector::new(Arc::clone(&registry));
        obs::with_collector(collector, || solve_nested_sharded(&inst, &opts))
    } else {
        solve_nested_sharded(&inst, &opts)
    }
    .map_err(|e| e.to_string())?;
    println!("jobs            : {}", inst.num_jobs());
    println!("g               : {}", inst.g);
    println!("LP lower bound  : {:.4}", result.stats.lp_objective);
    if let Some(exact) = &result.stats.lp_objective_exact {
        println!("LP (exact)      : {exact}");
    }
    println!("opened slots    : {}", result.stats.opened_slots);
    println!("active slots    : {}", result.stats.active_slots);
    println!("ALG/LP          : {:.4}", result.stats.opened_over_lp);
    println!("repair / polish : {} / {}", result.stats.repair_opened, result.stats.polish_closed);
    println!();
    println!("{}", result.schedule.render_timeline(&inst));
    if let Some(out) = flag_value(args, "--schedule") {
        let json = serde_json::to_string_pretty(&result.schedule).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| e.to_string())?;
        eprintln!("schedule written to {out}");
    }
    if let Some(out) = flag_value(args, "--svg") {
        use nested_active_time::core::render::{to_svg, SvgOptions};
        let svg = to_svg(&inst, &result.schedule, &SvgOptions::default());
        std::fs::write(out, svg).map_err(|e| e.to_string())?;
        eprintln!("gantt chart written to {out}");
    }
    if metrics {
        let json = serde_json::to_string_pretty(&registry.snapshot()).map_err(|e| e.to_string())?;
        println!();
        println!("{json}");
    }
    Ok(())
}

/// Solve a corpus of instances through the parallel batch engine and
/// print the JSON batch report (outcome counts, cache hit rate, p50 /
/// p95 / max latencies end-to-end and per pipeline stage).
///
/// The corpus is the positional instance files plus, when `--count N`
/// is given, `N` generated laminar instances (seeds `--seed`,
/// `--seed + 1`, …).
fn cmd_batch(args: &[String]) -> Result<(), String> {
    use nested_active_time::engine::{Engine, EngineConfig, Outcome};

    let mut instances = Vec::new();
    for path in args.iter().take_while(|a| !a.starts_with("--")) {
        instances.push(load(path)?);
    }
    let count: usize = parse_num(args, "--count", 0usize)?;
    if count > 0 {
        let base = LaminarConfig {
            g: parse_num(args, "--g", 3i64)?,
            horizon: parse_num(args, "--horizon", 24i64)?,
            ..Default::default()
        }
        .validated()
        .map_err(|e| e.to_string())?;
        let seed: u64 = parse_num(args, "--seed", 0u64)?;
        let roots: usize = parse_num(args, "--roots", 1usize)?;
        for i in 0..count {
            let s = seed.wrapping_add(i as u64);
            if roots > 1 {
                let cfg = MultiRootConfig { base: base.clone(), roots, gap: 1 }
                    .validated()
                    .map_err(|e| e.to_string())?;
                instances.push(random_multi_root(&cfg, s));
            } else {
                instances.push(random_laminar(&base, s));
            }
        }
    }
    if instances.is_empty() {
        return Err("batch needs instance files and/or --count N".into());
    }

    let mut opts = SolverOptions::exact();
    if has_flag(args, "--float") {
        opts.backend = LpBackend::Float;
    }
    if has_flag(args, "--snap") {
        opts.backend = LpBackend::FloatThenSnap;
    }
    if has_flag(args, "--polish") {
        opts.polish = true;
    }
    if let Some(mode) = flag_value(args, "--shard") {
        opts.shard = mode.parse::<ShardMode>()?;
    }
    if let Some(mode) = flag_value(args, "--precision") {
        opts.precision = mode.parse::<PrecisionMode>()?;
    }
    if let Some(path) = flag_value(args, "--lp-path") {
        opts.lp_path = path.parse::<LpPath>()?;
    }

    let mut cfg = EngineConfig::default()
        .workers(parse_num(args, "--workers", 0usize)?)
        .cache(!has_flag(args, "--no-cache"));
    if let Some(ms) = flag_value(args, "--timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("invalid value for --timeout-ms: {ms}"))?;
        cfg = cfg.timeout(std::time::Duration::from_millis(ms));
    }

    let trace = flag_value(args, "--trace-out")
        .map(|path| (path.to_string(), std::sync::Arc::new(atsched_obs::TraceBuffer::new())));
    let mut engine = Engine::new(cfg);
    if let Some((_, buffer)) = &trace {
        engine = engine.with_trace(std::sync::Arc::clone(buffer));
    }
    let batch = engine.solve_batch(&instances, &opts);
    if let Some((path, buffer)) = &trace {
        std::fs::write(path, buffer.to_chrome_json()).map_err(|e| e.to_string())?;
        eprintln!("trace written to {path} ({} events; load via chrome://tracing)", buffer.len());
    }

    if has_flag(args, "--check") {
        let sequential = Engine::new(EngineConfig::default().workers(1).cache(false))
            .solve_batch(&instances, &opts);
        for (i, (par, seq)) in batch.outcomes.iter().zip(&sequential.outcomes).enumerate() {
            let same = match (par, seq) {
                (Outcome::Solved(a), Outcome::Solved(b)) => a.result.schedule == b.result.schedule,
                (Outcome::Infeasible, Outcome::Infeasible) => true,
                // A timeout is inherently racy; don't fail the check on it.
                (Outcome::TimedOut, _) | (_, Outcome::TimedOut) => true,
                _ => false,
            };
            if !same {
                return Err(format!(
                    "instance {i}: parallel outcome {} != sequential {}",
                    par.label(),
                    seq.label()
                ));
            }
        }
        eprintln!(
            "check: parallel results identical to sequential on {} instances",
            instances.len()
        );

        // Shard equivalence: forcing root decomposition must not change
        // the objective relative to the monolithic solve.
        let mut forced = opts.clone();
        forced.shard = ShardMode::Force;
        let mut off = opts.clone();
        off.shard = ShardMode::Off;
        let fb = Engine::new(EngineConfig::default().cache(false)).solve_batch(&instances, &forced);
        let ob = Engine::new(EngineConfig::default().workers(1).cache(false))
            .solve_batch(&instances, &off);
        for (i, (f, o)) in fb.outcomes.iter().zip(&ob.outcomes).enumerate() {
            let same = match (f, o) {
                (Outcome::Solved(a), Outcome::Solved(b)) => {
                    a.result.stats.opened_slots == b.result.stats.opened_slots
                        && a.result.schedule.active_time() == b.result.schedule.active_time()
                }
                (Outcome::Infeasible, Outcome::Infeasible) => true,
                (Outcome::TimedOut, _) | (_, Outcome::TimedOut) => true,
                _ => false,
            };
            if !same {
                return Err(format!(
                    "instance {i}: shard=force outcome {} diverges from shard=off {}",
                    f.label(),
                    o.label()
                ));
            }
        }
        eprintln!(
            "check: shard=force objectives identical to shard=off on {} instances",
            instances.len()
        );

        // Precision equivalence: the hybrid f64-first LP pipeline must
        // yield bit-identical schedules to the pure exact simplex.
        if opts.backend == LpBackend::Exact {
            let mut hybrid = opts.clone();
            hybrid.precision = PrecisionMode::Hybrid;
            let mut pure = opts.clone();
            pure.precision = PrecisionMode::Exact;
            let hb =
                Engine::new(EngineConfig::default().cache(false)).solve_batch(&instances, &hybrid);
            let pb =
                Engine::new(EngineConfig::default().cache(false)).solve_batch(&instances, &pure);
            for (i, (h, p)) in hb.outcomes.iter().zip(&pb.outcomes).enumerate() {
                let same = match (h, p) {
                    (Outcome::Solved(a), Outcome::Solved(b)) => {
                        a.result.schedule == b.result.schedule && a.result.z == b.result.z
                    }
                    (Outcome::Infeasible, Outcome::Infeasible) => true,
                    (Outcome::TimedOut, _) | (_, Outcome::TimedOut) => true,
                    _ => false,
                };
                if !same {
                    return Err(format!(
                        "instance {i}: precision=hybrid outcome {} diverges from precision=exact {}",
                        h.label(),
                        p.label()
                    ));
                }
            }
            eprintln!(
                "check: precision=hybrid schedules bit-identical to precision=exact on {} instances",
                instances.len()
            );

            // LP-path equivalence: the combinatorial tree fast path
            // (with simplex fallback) must yield bit-identical
            // schedules and open counts to the pure simplex path.
            let mut tree_auto = opts.clone();
            tree_auto.lp_path = LpPath::Auto;
            let mut simplex = opts.clone();
            simplex.lp_path = LpPath::Simplex;
            let tb = Engine::new(EngineConfig::default().cache(false))
                .solve_batch(&instances, &tree_auto);
            let sb =
                Engine::new(EngineConfig::default().cache(false)).solve_batch(&instances, &simplex);
            for (i, (t, s)) in tb.outcomes.iter().zip(&sb.outcomes).enumerate() {
                let same = match (t, s) {
                    (Outcome::Solved(a), Outcome::Solved(b)) => {
                        a.result.schedule == b.result.schedule && a.result.z == b.result.z
                    }
                    (Outcome::Infeasible, Outcome::Infeasible) => true,
                    (Outcome::TimedOut, _) | (_, Outcome::TimedOut) => true,
                    _ => false,
                };
                if !same {
                    return Err(format!(
                        "instance {i}: lp-path=auto outcome {} diverges from lp-path=simplex {}",
                        t.label(),
                        s.label()
                    ));
                }
            }
            eprintln!(
                "check: lp-path=auto schedules bit-identical to lp-path=simplex on {} instances",
                instances.len()
            );
        }
    }

    let json = batch.report.to_json_pretty();
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| e.to_string())?;
            eprintln!("report written to {path}");
        }
        None => println!("{json}"),
    }
    eprintln!(
        "batch: {} instances, {} solved, {} infeasible, {} timed out, {} failed ({} workers, {:.0}% cache hits)",
        batch.report.total,
        batch.report.solved,
        batch.report.infeasible,
        batch.report.timed_out,
        batch.report.failed,
        batch.report.workers,
        100.0 * batch.report.cache.hit_rate
    );
    // A batch with lost work must not exit 0 — scripts and CI depend on
    // the status code. `--keep-going` restores the old advisory
    // behavior. (Infeasible is a *result*, not a failure.)
    let lost = batch.report.timed_out + batch.report.failed;
    if lost > 0 && !has_flag(args, "--keep-going") {
        return Err(format!(
            "{} of {} instances did not finish ({} timed out, {} failed); \
             pass --keep-going to exit 0 anyway",
            lost, batch.report.total, batch.report.timed_out, batch.report.failed
        ));
    }
    Ok(())
}

fn cmd_opt(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("opt needs an instance file")?;
    let inst = load(path)?;
    let opt = if has_flag(args, "--parallel") {
        nested_opt_parallel(&inst, 0)
    } else {
        nested_opt(&inst, 0)
    };
    match opt {
        Some(s) => {
            println!("optimal active slots: {}", s.active_time());
            println!();
            println!("{}", s.render_timeline(&inst));
            Ok(())
        }
        None => Err("instance is infeasible".into()),
    }
}

fn cmd_greedy(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("greedy needs an instance file")?;
    let inst = load(path)?;
    let order = match flag_value(args, "--order").unwrap_or("rtl") {
        "ltr" => ScanOrder::LeftToRight,
        "rtl" => ScanOrder::RightToLeft,
        "rand" => ScanOrder::Shuffled(parse_num(args, "--seed", 0u64)?),
        other => return Err(format!("unknown order '{other}'")),
    };
    match minimal_feasible_fast(&inst, order) {
        Some(r) => {
            println!(
                "greedy active slots: {} ({} deactivated of {})",
                r.schedule.active_time(),
                r.deactivated,
                r.examined
            );
            Ok(())
        }
        None => Err("instance is infeasible".into()),
    }
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let inst_path = args.first().ok_or("verify needs INSTANCE.json SCHEDULE.json")?;
    let sched_path = args.get(1).ok_or("verify needs INSTANCE.json SCHEDULE.json")?;
    let inst = load(inst_path)?;
    let body = std::fs::read_to_string(sched_path).map_err(|e| e.to_string())?;
    let schedule: Schedule = serde_json::from_str(&body).map_err(|e| e.to_string())?;
    schedule.verify(&inst).map_err(|e| e.to_string())?;
    println!("schedule is valid: {} active slots", schedule.active_time());
    Ok(())
}

fn cmd_gaps(args: &[String]) -> Result<(), String> {
    use nested_active_time::gaps::instances::{gap2_instance, lemma51_instance};
    use nested_active_time::gaps::{cw_lp, natural_lp};
    use nested_active_time::num::Ratio;
    let g: i64 = parse_num(args, "--g", 3i64)?;
    let family = flag_value(args, "--family").unwrap_or("lemma51");
    let inst = match family {
        "lemma51" => lemma51_instance(g),
        "gap2" => gap2_instance(g),
        other => return Err(format!("unknown family '{other}'")),
    };
    let natural = natural_lp::value::<Ratio>(&inst).ok_or("infeasible")?;
    let cw = cw_lp::value::<Ratio>(&inst).ok_or("infeasible")?;
    let tree = solve_nested(&inst, &SolverOptions::exact()).map_err(|e| e.to_string())?;
    let opt = nested_opt(&inst, 0).ok_or("infeasible")?;
    println!("family {family}, g = {g}:");
    println!("  natural LP : {natural}");
    println!("  CW LP      : {cw}");
    println!("  tree LP    : {}", tree.stats.lp_objective_exact.as_deref().unwrap_or("-"));
    println!("  OPT        : {}", opt.active_time());
    Ok(())
}
