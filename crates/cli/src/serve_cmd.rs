//! `atsched serve` — run the long-lived solve service.

use atsched_serve::{Server, ServerConfig};
use std::io::Write;
use std::time::Duration;

/// Start the service and block until a `shutdown` request drains it.
///
/// Prints exactly one `listening on ADDR` line to stdout once the
/// socket is bound — supervisors (and the CI smoke job) wait for that
/// line before sending traffic.
pub(crate) fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut cfg = ServerConfig::default()
        .workers(crate::parse_num(args, "--workers", 0usize)?)
        .queue_depth(crate::parse_num(args, "--queue", 0usize)?)
        .router_workers(crate::parse_num(args, "--router", 0usize)?)
        .delay_ms(crate::parse_num(args, "--delay-ms", 0u64)?);
    if let Some(addr) = crate::flag_value(args, "--addr") {
        cfg = cfg.addr(addr);
    }
    if let Some(ms) = crate::flag_value(args, "--timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("invalid value for --timeout-ms: {ms}"))?;
        cfg = cfg.default_timeout(if ms == 0 { None } else { Some(Duration::from_millis(ms)) });
    }
    if let Some(n) = crate::flag_value(args, "--max-sessions") {
        let n: usize = n.parse().map_err(|_| format!("invalid value for --max-sessions: {n}"))?;
        cfg = cfg.max_sessions(n);
    }
    if let Some(ms) = crate::flag_value(args, "--session-ttl-ms") {
        let ms: u64 =
            ms.parse().map_err(|_| format!("invalid value for --session-ttl-ms: {ms}"))?;
        cfg = cfg.session_ttl(Duration::from_millis(ms));
    }
    if let Some(addr) = crate::flag_value(args, "--metrics-addr") {
        cfg = cfg.metrics_addr(addr);
    }
    if let Some(ms) = crate::flag_value(args, "--slow-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("invalid value for --slow-ms: {ms}"))?;
        cfg = cfg.slow_ms(ms);
    }

    let server = Server::bind(cfg).map_err(|e| format!("bind failed: {e}"))?;
    println!("listening on {}", server.local_addr());
    if let Some(scrape) = server.metrics_addr() {
        eprintln!("metrics on http://{scrape}/metrics");
    }
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    let snapshot = server.run().map_err(|e| format!("server failed: {e}"))?;
    eprintln!(
        "drained: {} received, {} accepted, {} completed, {} shed, {:.0}% cache hits",
        snapshot.received,
        snapshot.accepted,
        snapshot.completed,
        snapshot.rejected_overload + snapshot.rejected_shutdown,
        100.0 * snapshot.cache_hit_rate
    );
    Ok(())
}
