//! `atsched client` — talk to a running solve service — and
//! `atsched amend` — drive an incremental session end to end.
//!
//! `atsched client ADDR VERB ...`; every service failure maps to a
//! nonzero exit code with the typed error kind on stderr.

use atsched_serve::{Client, ClientError, DeltaSpec, Request, SolveReply};

pub(crate) fn cmd_client(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("client needs ADDR (host:port) and a verb")?;
    let verb = args.get(1).map(String::as_str).ok_or("client needs a verb after ADDR")?;
    let rest = &args[2..];
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("connecting to {addr}: {e}"))?;
    match verb {
        "solve" => cmd_solve(&mut client, rest),
        "batch" => cmd_batch(&mut client, rest),
        "open" => {
            let path = rest.first().ok_or("client open needs an instance file")?;
            let inst = crate::load(path)?;
            let (session, reply) = client.open(&inst).map_err(render)?;
            print_session_reply("opened", session, &reply);
            Ok(())
        }
        "amend" => {
            let session: u64 = rest
                .first()
                .ok_or("client amend needs SESSION and a delta")?
                .parse()
                .map_err(|_| "SESSION must be the numeric id `open` printed".to_string())?;
            let delta = load_delta(
                rest.get(1).map(String::as_str).ok_or("client amend needs a delta file")?,
            )?;
            let reply = client.amend(session, &delta).map_err(render)?;
            print_session_reply("amended", session, &reply);
            Ok(())
        }
        "close" => {
            let session: u64 = rest
                .first()
                .ok_or("client close needs SESSION")?
                .parse()
                .map_err(|_| "SESSION must be the numeric id `open` printed".to_string())?;
            client.close(session).map_err(render)?;
            println!("session {session} closed");
            Ok(())
        }
        "stats" => {
            let stats = client.stats().map_err(render)?;
            println!("{}", serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?);
            Ok(())
        }
        "metrics" => {
            let text = client.metrics().map_err(render)?;
            print!("{text}");
            Ok(())
        }
        "health" => {
            client.health().map_err(render)?;
            println!("ok");
            Ok(())
        }
        "shutdown" => {
            let snapshot = client.shutdown().map_err(render)?;
            println!("{}", serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?);
            eprintln!(
                "server drained: {} completed of {} accepted",
                snapshot.completed, snapshot.accepted
            );
            Ok(())
        }
        other => Err(format!(
            "unknown client verb '{other}' (solve|batch|open|amend|close|stats|metrics|health|shutdown)"
        )),
    }
}

/// `atsched amend ADDR INSTANCE --delta FILE [--delta FILE ...]` — the
/// one-shot session flow: open, apply each delta in order, close
/// (unless `--keep-open`, which prints the session id for later
/// `atsched client ADDR amend SESSION ...` calls).
pub(crate) fn cmd_amend(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("amend needs ADDR (host:port) and an instance file")?;
    let path = args.get(1).ok_or("amend needs an instance file after ADDR")?;
    let mut deltas = Vec::new();
    let mut i = 2;
    while i < args.len() {
        if args[i] == "--delta" {
            let file = args.get(i + 1).ok_or("--delta needs a file")?;
            deltas.push(load_delta(file)?);
            i += 2;
        } else {
            i += 1;
        }
    }
    if deltas.is_empty() {
        return Err("amend needs at least one --delta FILE".into());
    }
    let inst = crate::load(path)?;
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let (session, reply) = client.open(&inst).map_err(render)?;
    print_session_reply("opened", session, &reply);
    for (step, delta) in deltas.iter().enumerate() {
        let reply = client.amend(session, delta).map_err(render)?;
        print_session_reply(&format!("amend #{}", step + 1), session, &reply);
    }
    if crate::has_flag(args, "--keep-open") {
        eprintln!(
            "session {session} left open (close with `atsched client {addr} close {session}`)"
        );
    } else {
        client.close(session).map_err(render)?;
    }
    Ok(())
}

/// A delta file holds a [`DeltaSpec`] as JSON:
/// `{"add":[{"release":..,"deadline":..,"processing":..}],"remove":[ID..],"modify":[{"job":ID,"release":..,"deadline":..}]}`.
fn load_delta(path: &str) -> Result<DeltaSpec, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("loading {path}: {e}"))?;
    let spec: DeltaSpec =
        serde_json::from_str(&body).map_err(|e| format!("parsing {path}: {e}"))?;
    if spec.is_empty() {
        return Err(format!("{path} holds an empty delta (no add/remove/modify ops)"));
    }
    Ok(spec)
}

fn print_session_reply(what: &str, session: u64, reply: &SolveReply) {
    println!(
        "{what}: session {session}, {} active slots, {}{:.2} ms",
        reply.active_slots,
        if reply.cached { "cached, " } else { "" },
        reply.elapsed_ms,
    );
}

fn render(e: ClientError) -> String {
    e.to_string()
}

fn cmd_solve(client: &mut Client, args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("client solve needs an instance file")?;
    let inst = crate::load(path)?;
    let mut req = Request::solve(&inst);
    if let Some(method) = crate::flag_value(args, "--method") {
        req = req.with_method(method);
    }
    if let Some(backend) = crate::flag_value(args, "--backend") {
        req = req.with_backend(backend);
    }
    if let Some(precision) = crate::flag_value(args, "--precision") {
        req = req.with_precision(precision);
    }
    if let Some(lp_path) = crate::flag_value(args, "--lp-path") {
        req = req.with_lp_path(lp_path);
    }
    if crate::has_flag(args, "--polish") {
        req = req.with_polish(true);
    }
    if let Some(seed) = crate::flag_value(args, "--seed") {
        req = req.with_seed(seed.parse().map_err(|_| format!("invalid value for --seed: {seed}"))?);
    }
    if let Some(shard) = crate::flag_value(args, "--shard") {
        req = req.with_shard(shard);
    }
    if let Some(ms) = crate::flag_value(args, "--timeout-ms") {
        req = req.with_timeout_ms(
            ms.parse().map_err(|_| format!("invalid value for --timeout-ms: {ms}"))?,
        );
    }
    let want_schedule = crate::flag_value(args, "--schedule");
    if want_schedule.is_some() {
        req = req.with_schedule();
    }
    let reply = client.solve(req).map_err(render)?;
    println!("active slots : {}", reply.active_slots);
    println!("method       : {}", reply.method);
    if let Some(ratio) = reply.certified_ratio {
        println!("ALG/LP       : {ratio:.4}");
    }
    println!("cached       : {}", reply.cached);
    println!("elapsed      : {:.2} ms", reply.elapsed_ms);
    if let Some(out) = want_schedule {
        let schedule = reply.schedule.ok_or("server reply carried no schedule")?;
        let json = serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| e.to_string())?;
        eprintln!("schedule written to {out}");
    }
    Ok(())
}

fn cmd_batch(client: &mut Client, args: &[String]) -> Result<(), String> {
    let paths: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        return Err("client batch needs instance files".into());
    }
    let mut instances = Vec::with_capacity(paths.len());
    for path in paths {
        instances.push(crate::load(path)?);
    }
    let reply = client.batch(&instances).map_err(render)?;
    println!("{}", serde_json::to_string_pretty(&reply).map_err(|e| e.to_string())?);
    eprintln!(
        "batch: {} instances, {} solved, {} infeasible, {} timed out, {} failed",
        reply.total, reply.solved, reply.infeasible, reply.timed_out, reply.failed
    );
    // Same contract as the local `atsched batch`: lost work is a
    // nonzero exit.
    let lost = reply.timed_out + reply.failed;
    if lost > 0 {
        return Err(format!("{lost} of {} instances did not finish", reply.total));
    }
    Ok(())
}
