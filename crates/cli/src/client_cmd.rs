//! `atsched client` — talk to a running solve service.
//!
//! `atsched client ADDR VERB ...`; every service failure maps to a
//! nonzero exit code with the typed error kind on stderr.

use atsched_serve::{Client, ClientError, Request};

pub(crate) fn cmd_client(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("client needs ADDR (host:port) and a verb")?;
    let verb = args.get(1).map(String::as_str).ok_or("client needs a verb after ADDR")?;
    let rest = &args[2..];
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("connecting to {addr}: {e}"))?;
    match verb {
        "solve" => cmd_solve(&mut client, rest),
        "batch" => cmd_batch(&mut client, rest),
        "stats" => {
            let stats = client.stats().map_err(render)?;
            println!("{}", serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?);
            Ok(())
        }
        "health" => {
            client.health().map_err(render)?;
            println!("ok");
            Ok(())
        }
        "shutdown" => {
            let snapshot = client.shutdown().map_err(render)?;
            println!("{}", serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?);
            eprintln!(
                "server drained: {} completed of {} accepted",
                snapshot.completed, snapshot.accepted
            );
            Ok(())
        }
        other => Err(format!("unknown client verb '{other}' (solve|batch|stats|health|shutdown)")),
    }
}

fn render(e: ClientError) -> String {
    e.to_string()
}

fn cmd_solve(client: &mut Client, args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("client solve needs an instance file")?;
    let inst = crate::load(path)?;
    let mut req = Request::solve(&inst);
    if let Some(method) = crate::flag_value(args, "--method") {
        req = req.with_method(method);
    }
    if let Some(backend) = crate::flag_value(args, "--backend") {
        req = req.with_backend(backend);
    }
    if crate::has_flag(args, "--polish") {
        req = req.with_polish(true);
    }
    if let Some(seed) = crate::flag_value(args, "--seed") {
        req = req.with_seed(seed.parse().map_err(|_| format!("invalid value for --seed: {seed}"))?);
    }
    if let Some(shard) = crate::flag_value(args, "--shard") {
        req = req.with_shard(shard);
    }
    if let Some(ms) = crate::flag_value(args, "--timeout-ms") {
        req = req.with_timeout_ms(
            ms.parse().map_err(|_| format!("invalid value for --timeout-ms: {ms}"))?,
        );
    }
    let want_schedule = crate::flag_value(args, "--schedule");
    if want_schedule.is_some() {
        req = req.with_schedule();
    }
    let reply = client.solve(req).map_err(render)?;
    println!("active slots : {}", reply.active_slots);
    println!("method       : {}", reply.method);
    if let Some(ratio) = reply.certified_ratio {
        println!("ALG/LP       : {ratio:.4}");
    }
    println!("cached       : {}", reply.cached);
    println!("elapsed      : {:.2} ms", reply.elapsed_ms);
    if let Some(out) = want_schedule {
        let schedule = reply.schedule.ok_or("server reply carried no schedule")?;
        let json = serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| e.to_string())?;
        eprintln!("schedule written to {out}");
    }
    Ok(())
}

fn cmd_batch(client: &mut Client, args: &[String]) -> Result<(), String> {
    let paths: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        return Err("client batch needs instance files".into());
    }
    let mut instances = Vec::with_capacity(paths.len());
    for path in paths {
        instances.push(crate::load(path)?);
    }
    let reply = client.batch(&instances).map_err(render)?;
    println!("{}", serde_json::to_string_pretty(&reply).map_err(|e| e.to_string())?);
    eprintln!(
        "batch: {} instances, {} solved, {} infeasible, {} timed out, {} failed",
        reply.total, reply.solved, reply.infeasible, reply.timed_out, reply.failed
    );
    // Same contract as the local `atsched batch`: lost work is a
    // nonzero exit.
    let lost = reply.timed_out + reply.failed;
    if lost > 0 {
        return Err(format!("{lost} of {} instances did not finish", reply.total));
    }
    Ok(())
}
