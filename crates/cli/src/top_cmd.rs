//! `atsched top` — a polling terminal dashboard over a running server's
//! `stats` verb: windowed request rates, per-shard queue/session/cache
//! sections, windowed latency percentiles, and the recent slow-request
//! log with per-stage timings.

use atsched_serve::{Client, StatsReply};
use std::io::Write;
use std::time::Duration;

/// Poll ADDR every `--interval-ms` (default 2000) and redraw. `--count N`
/// stops after N polls (0 = until the server goes away); `--no-clear`
/// appends frames instead of redrawing in place (logs, piping).
pub(crate) fn cmd_top(args: &[String]) -> Result<(), String> {
    let addr = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("top needs the server ADDR (host:port)")?;
    let interval = Duration::from_millis(crate::parse_num(args, "--interval-ms", 2000u64)?);
    let count: u64 = crate::parse_num(args, "--count", 0u64)?;
    let clear = !crate::has_flag(args, "--no-clear");

    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    client
        .set_read_timeout(Some(interval.max(Duration::from_secs(2)) * 2))
        .map_err(|e| e.to_string())?;
    let mut polls = 0u64;
    loop {
        let stats = client.stats().map_err(|e| format!("stats poll failed: {e}"))?;
        let frame = render(addr, &stats);
        if clear {
            // ANSI clear + home, so the dashboard redraws in place.
            print!("\x1b[2J\x1b[H{frame}");
        } else {
            println!("{frame}");
        }
        std::io::stdout().flush().map_err(|e| e.to_string())?;
        polls += 1;
        if count != 0 && polls >= count {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn rate_line(stats: &StatsReply, name: &str) -> String {
    match stats.registry.window(name) {
        Some(w) => {
            format!("10s {:>8.1}/s   1m {:>8.1}/s   5m {:>8.1}/s", w.rate_10s, w.rate_1m, w.rate_5m)
        }
        None => "(no windowed view)".into(),
    }
}

/// One dashboard frame as a string (separated from the poll loop so
/// tests can render a canned snapshot).
pub(crate) fn render(addr: &str, stats: &StatsReply) -> String {
    let mut out = String::new();
    let w = &mut out;
    let push = |w: &mut String, line: String| {
        w.push_str(&line);
        w.push('\n');
    };

    push(w, format!("atsched top — {addr}    uptime {:.1}s", stats.uptime_ms / 1e3));
    push(w, String::new());
    push(
        w,
        format!(
            "requests   recv {}   done {}   inflight {}   shed {}   errors {}   timeouts {}",
            stats.received,
            stats.completed,
            stats.inflight,
            stats.rejected_overload + stats.rejected_shutdown,
            stats.solve_errors,
            stats.timed_out,
        ),
    );
    push(w, format!("completed  {}", rate_line(stats, "serve.completed")));
    push(
        w,
        format!(
            "latency    p50 {:.2} ms   p95 {:.2} ms   max {:.2} ms (lifetime)",
            stats.latency_ms.p50, stats.latency_ms.p95, stats.latency_ms.max
        ),
    );
    if let Some(wh) = stats.registry.window_histogram("serve.latency_ms") {
        push(
            w,
            format!(
                "           p50 {:.2} ms   p95 {:.2} ms   p99 {:.2} ms (1m window, n={})",
                wh.w1m.p50, wh.w1m.p95, wh.w1m.p99, wh.w1m.count
            ),
        );
    }
    push(
        w,
        format!(
            "sessions   open {}   queue {}/{}   cache {:.0}% hit ({} entries)",
            stats.sessions_open,
            stats.queue_len,
            stats.queue_capacity,
            100.0 * stats.cache_hit_rate,
            stats.cache_entries
        ),
    );

    if !stats.shards.is_empty() {
        push(w, String::new());
        push(
            w,
            format!(
                "{:>5} {:>11} {:>6} {:>13} {:>8} {:>9} {:>9} {:>9}",
                "shard", "queue", "sess", "cache h/m", "reqs", "10s/s", "1m/s", "5m/s"
            ),
        );
        for s in &stats.shards {
            push(
                w,
                format!(
                    "{:>5} {:>11} {:>6} {:>13} {:>8} {:>9.1} {:>9.1} {:>9.1}",
                    s.shard,
                    format!("{}/{}", s.queue_len, s.queue_capacity),
                    s.sessions_open,
                    format!("{}/{}", s.cache_hits, s.cache_misses),
                    s.requests,
                    s.rate_10s,
                    s.rate_1m,
                    s.rate_5m
                ),
            );
        }
    }

    if !stats.slow.is_empty() {
        push(w, String::new());
        push(w, "recent slow / errored requests (newest first)".to_string());
        for e in &stats.slow {
            let shard = e.shard.map(|s| s.to_string()).unwrap_or_else(|| "-".into());
            let status = e.error.as_deref().unwrap_or("ok");
            let stages: Vec<String> =
                e.stages.iter().map(|s| format!("{} {:.1}ms", s.stage, s.ms)).collect();
            push(
                w,
                format!(
                    "  #{:<6} {:<6} shard {:<3} {:>9.1} ms  {:<10} {}",
                    e.request,
                    e.verb,
                    shard,
                    e.total_ms,
                    status,
                    stages.join(" > ")
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_serve::{ShardStats, SlowRequest, StageTiming};

    #[test]
    fn render_includes_shards_rates_and_slow_entries() {
        let mut stats =
            StatsReply { received: 10, completed: 9, sessions_open: 1, ..Default::default() };
        stats.shards = vec![ShardStats {
            shard: 0,
            queue_len: 1,
            queue_capacity: 8,
            sessions_open: 1,
            cache_hits: 4,
            cache_misses: 2,
            requests: 9,
            rate_10s: 0.9,
            rate_1m: 0.2,
            rate_5m: 0.1,
        }];
        stats.slow = vec![SlowRequest {
            request: 7,
            verb: "amend".into(),
            shard: Some(0),
            total_ms: 12.5,
            error: None,
            stages: vec![StageTiming { stage: "lp".into(), ms: 9.1 }],
        }];
        let frame = render("127.0.0.1:7411", &stats);
        assert!(frame.contains("atsched top — 127.0.0.1:7411"), "{frame}");
        assert!(frame.contains("recv 10"), "{frame}");
        assert!(frame.contains("4/2"), "{frame}");
        assert!(frame.contains("#7"), "{frame}");
        assert!(frame.contains("amend"), "{frame}");
        assert!(frame.contains("lp 9.1ms"), "{frame}");
    }
}
