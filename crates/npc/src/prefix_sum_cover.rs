//! The paper's *Prefix Sum Cover* problem (§6).
//!
//! Given `n` vectors `u₁, …, uₙ ∈ ℕ₊^d`, a target `v ∈ ℕ^d` and an
//! integer `k`, decide whether some `k` vectors sum to a vector that
//! *prefix-dominates* `v`: for every `j`, `Σ_{i ≤ j} sum_i ≥ Σ_{i ≤ j}
//! v_i`. The restricted version used by the reduction to active-time
//! scheduling additionally requires all vectors to be non-increasing,
//! strictly positive (`u`), and with entries bounded by a polynomial `W`.

/// A prefix sum cover instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixSumCover {
    /// The candidate vectors (all the same dimension).
    pub vectors: Vec<Vec<i64>>,
    /// The target vector.
    pub target: Vec<i64>,
    /// Exactly `k` vectors must be chosen (choosing fewer is never worse:
    /// entries are non-negative, so padding preserves domination).
    pub k: usize,
}

/// Does `sum` prefix-dominate `target`?
pub fn prefix_dominates(sum: &[i64], target: &[i64]) -> bool {
    debug_assert_eq!(sum.len(), target.len());
    let mut ps = 0i64;
    let mut pt = 0i64;
    for (s, t) in sum.iter().zip(target) {
        ps += s;
        pt += t;
        if ps < pt {
            return false;
        }
    }
    true
}

impl PrefixSumCover {
    /// Validate dimensions and the restricted-version structure.
    pub fn new(vectors: Vec<Vec<i64>>, target: Vec<i64>, k: usize) -> Result<Self, String> {
        let d = target.len();
        for (i, u) in vectors.iter().enumerate() {
            if u.len() != d {
                return Err(format!("vector {i} has wrong dimension"));
            }
            if u.iter().any(|&x| x < 1) {
                return Err(format!("vector {i} is not strictly positive"));
            }
            if u.windows(2).any(|w| w[0] < w[1]) {
                return Err(format!("vector {i} is not non-increasing"));
            }
        }
        if target.iter().any(|&x| x < 0) {
            return Err("target has negative entries".into());
        }
        if target.windows(2).any(|w| w[0] < w[1]) {
            return Err("target is not non-increasing".into());
        }
        Ok(PrefixSumCover { vectors, target, k })
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.target.len()
    }

    /// Maximum scalar `W` appearing anywhere.
    pub fn max_scalar(&self) -> i64 {
        self.vectors.iter().flatten().chain(self.target.iter()).copied().max().unwrap_or(0)
    }

    /// Do the chosen indices solve the instance?
    pub fn check(&self, chosen: &[usize]) -> bool {
        if chosen.len() != self.k {
            return false;
        }
        let mut sum = vec![0i64; self.dim()];
        for &i in chosen {
            for (s, u) in sum.iter_mut().zip(&self.vectors[i]) {
                *s += u;
            }
        }
        prefix_dominates(&sum, &self.target)
    }

    /// Brute-force decision: is some `k`-subset a solution?
    pub fn solvable(&self) -> bool {
        let n = self.vectors.len();
        if self.k > n {
            return false;
        }
        assert!(n <= 20, "brute-force PSC limited to 20 vectors");
        let mut chosen = Vec::with_capacity(self.k);
        self.search(0, &mut chosen)
    }

    fn search(&self, start: usize, chosen: &mut Vec<usize>) -> bool {
        if chosen.len() == self.k {
            return self.check(chosen);
        }
        for i in start..self.vectors.len() {
            chosen.push(i);
            if self.search(i + 1, chosen) {
                chosen.pop();
                return true;
            }
            chosen.pop();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domination_basics() {
        assert!(prefix_dominates(&[3, 1], &[2, 2]));
        assert!(!prefix_dominates(&[1, 3], &[2, 2]));
        assert!(prefix_dominates(&[2, 2], &[2, 2]));
        assert!(prefix_dominates(&[], &[]));
    }

    #[test]
    fn validation() {
        assert!(PrefixSumCover::new(vec![vec![2, 1]], vec![1, 1], 1).is_ok());
        assert!(PrefixSumCover::new(vec![vec![1, 2]], vec![1, 1], 1).is_err()); // increasing u
        assert!(PrefixSumCover::new(vec![vec![1, 0]], vec![1, 1], 1).is_err()); // zero entry
        assert!(PrefixSumCover::new(vec![vec![2, 1]], vec![1, 2], 1).is_err()); // increasing v
        assert!(PrefixSumCover::new(vec![vec![1]], vec![1, 1], 1).is_err()); // dim mismatch
    }

    #[test]
    fn small_decisions() {
        // Two vectors; need both to dominate [3,3].
        let psc = PrefixSumCover::new(vec![vec![2, 2], vec![2, 1]], vec![3, 3], 2).unwrap();
        assert!(psc.solvable()); // sum = [4,3]: prefixes 4 ≥ 3, 7 ≥ 6 ✓
        let psc1 = PrefixSumCover::new(vec![vec![2, 2], vec![2, 1]], vec![3, 3], 1).unwrap();
        assert!(!psc1.solvable());
    }

    #[test]
    fn prefix_slack_carries_over() {
        // Dimension 2: [5,1] dominates [3,3] because 5 ≥ 3, 6 ≥ 6.
        let psc = PrefixSumCover::new(vec![vec![5, 1]], vec![3, 3], 1).unwrap();
        assert!(psc.solvable());
    }

    #[test]
    fn k_larger_than_n() {
        let psc = PrefixSumCover::new(vec![vec![1]], vec![1], 2).unwrap();
        assert!(!psc.solvable());
    }
}
