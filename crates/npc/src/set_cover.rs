//! Classic Set Cover, with a brute-force solver for ground truth.

/// A set cover instance: universe `{0, …, d-1}` and a family of subsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCover {
    /// Universe size `d`.
    pub universe: usize,
    /// The subsets (each a sorted list of element indices `< universe`).
    pub sets: Vec<Vec<usize>>,
}

impl SetCover {
    /// Validate element ranges and sort members.
    pub fn new(universe: usize, mut sets: Vec<Vec<usize>>) -> Result<Self, String> {
        for (i, s) in sets.iter_mut().enumerate() {
            s.sort_unstable();
            s.dedup();
            if s.iter().any(|&e| e >= universe) {
                return Err(format!("set {i} contains an out-of-range element"));
            }
        }
        Ok(SetCover { universe, sets })
    }

    /// Do the sets with the given indices cover the universe?
    pub fn covers(&self, chosen: &[usize]) -> bool {
        let mut hit = vec![false; self.universe];
        for &i in chosen {
            for &e in &self.sets[i] {
                hit[e] = true;
            }
        }
        hit.into_iter().all(|h| h)
    }

    /// Is the universe coverable with at most `k` sets? (brute force)
    pub fn solvable_with(&self, k: usize) -> bool {
        self.min_cover().is_some_and(|m| m <= k)
    }

    /// Minimum cover size by brute force; `None` if even all sets fail.
    pub fn min_cover(&self) -> Option<usize> {
        if self.universe == 0 {
            return Some(0);
        }
        let n = self.sets.len();
        assert!(n <= 20, "brute-force set cover limited to 20 sets");
        let mut best: Option<usize> = None;
        for mask in 0u32..(1 << n) {
            let chosen: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if self.covers(&chosen) {
                best = Some(best.map_or(chosen.len(), |b: usize| b.min(chosen.len())));
            }
        }
        best
    }
}

/// Deterministic pseudo-random instance (SplitMix64-driven).
pub fn random_set_cover(universe: usize, n_sets: usize, seed: u64) -> SetCover {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut sets: Vec<Vec<usize>> = Vec::with_capacity(n_sets);
    for _ in 0..n_sets {
        let mut s = Vec::new();
        for e in 0..universe {
            if next() % 2 == 0 {
                s.push(e);
            }
        }
        if s.is_empty() && universe > 0 {
            s.push((next() % universe as u64) as usize);
        }
        sets.push(s);
    }
    // Guarantee coverability: sprinkle missing elements into random sets.
    for e in 0..universe {
        if !sets.iter().any(|s| s.contains(&e)) {
            let i = (next() % n_sets as u64) as usize;
            sets[i].push(e);
        }
    }
    SetCover::new(universe, sets).expect("generator emits valid sets")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        let sc = SetCover::new(0, vec![]).unwrap();
        assert_eq!(sc.min_cover(), Some(0));
        let sc = SetCover::new(2, vec![vec![0, 1]]).unwrap();
        assert_eq!(sc.min_cover(), Some(1));
        let sc = SetCover::new(2, vec![vec![0]]).unwrap();
        assert_eq!(sc.min_cover(), None);
    }

    #[test]
    fn classic_three_sets() {
        // {0,1}, {1,2}, {2,3}: cover {0..3} needs 2 sets.
        let sc = SetCover::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        assert_eq!(sc.min_cover(), Some(2));
        assert!(sc.solvable_with(2));
        assert!(!sc.solvable_with(1));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(SetCover::new(2, vec![vec![5]]).is_err());
    }

    #[test]
    fn generator_coverable() {
        for seed in 0..20 {
            let sc = random_set_cover(5, 4, seed);
            assert!(sc.min_cover().is_some(), "seed {seed}");
        }
    }
}
