//! # atsched-npc
//!
//! The NP-completeness pipeline of paper §6, fully executable:
//!
//! * [`set_cover`] — classic Set Cover instances + a brute-force solver.
//! * [`prefix_sum_cover`] — the paper's new *Prefix Sum Cover* problem
//!   (choose `k` of `n` non-negative, non-increasing integer vectors
//!   whose sum prefix-dominates a target) + a brute-force solver.
//! * [`reductions`] — both reductions: Set Cover → Prefix Sum Cover
//!   (the proof of §6's first theorem) and Prefix Sum Cover → nested
//!   active-time scheduling (jobs `S₁` rigid / `S₂` flexible / `S₃`
//!   target; `g = p = d·W`).
//!
//! Experiment E6 verifies on random instances that the decision answers
//! agree across the whole chain, using the exact solvers at each level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prefix_sum_cover;
pub mod reductions;
pub mod set_cover;
