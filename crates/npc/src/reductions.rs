//! The two reductions of paper §6.
//!
//! 1. **Set Cover → Prefix Sum Cover** ([`set_cover_to_psc`]). The paper
//!    transforms incidence vectors with an additive staircase
//!    `[u']_j = [u]_j − [u]_{j−1} + 2 + (d − j)` whose telescoping prefix
//!    sums cancel exactly, making prefix domination equivalent to
//!    coverage. *Deviation:* the paper's slope of 1 per index does not
//!    actually force the transformed vectors to be non-increasing (take
//!    `u = (1,0,1)`: `u' = (1+2+2, −1+2+1, 1+2+0) = (5, 2, 3)`). We use
//!    a slope of 2 — `[u']_j = [u]_j − [u]_{j−1} + 2 + 2(d − j)` and
//!    `[v']_j = [v]_j − [v]_{j−1} + 2k + 2k(d − j)` — which restores
//!    monotonicity (`2·[u]_{j−1} − [u]_{j−2} − [u]_j + 2 ≥ 0` for 0/1
//!    vectors) while the telescoping cancellation, positivity, and the
//!    polynomial bound `W = O(kd)` are unchanged. See DESIGN.md.
//! 2. **Prefix Sum Cover → nested active-time** ([`psc_to_active_time`]):
//!    `g = p = d·W` machine slots; per candidate vector a window of `W`
//!    slots whose last `W−1` slots are pinned by rigid unit jobs (`S₁`),
//!    `Σ_j [u_i]_j − d` flexible unit jobs per window (`S₂`), and one job
//!    of length `[v]_j` per target dimension spanning everything (`S₃`).
//!    Opening window `i`'s *special* first slot releases exactly the
//!    staircase `[u_i]_·` of spare capacity, so the optimum is
//!    `n(W−1) + k` iff the PSC instance is solvable with `k`.

use crate::prefix_sum_cover::PrefixSumCover;
use crate::set_cover::SetCover;
use atsched_core::instance::{Instance, Job};

/// Set Cover (with budget `k`) → restricted Prefix Sum Cover.
pub fn set_cover_to_psc(sc: &SetCover, k: usize) -> PrefixSumCover {
    let d = sc.universe;
    let ki = k as i64;
    let incidence = |set: &[usize], j: usize| -> i64 {
        if set.contains(&j) {
            1
        } else {
            0
        }
    };
    let vectors: Vec<Vec<i64>> = sc
        .sets
        .iter()
        .map(|s| {
            (0..d)
                .map(|j| {
                    let cur = incidence(s, j);
                    let prev = if j == 0 { 0 } else { incidence(s, j - 1) };
                    // slope-2 staircase; j is 0-based ⇒ (d − j − 1) tail
                    cur - prev + 2 + 2 * (d as i64 - j as i64 - 1)
                })
                .collect()
        })
        .collect();
    let target: Vec<i64> = (0..d)
        .map(|j| {
            let cur = 1i64; // v = 1^d
            let prev = if j == 0 { 0 } else { 1 };
            cur - prev + 2 * ki + 2 * ki * (d as i64 - j as i64 - 1)
        })
        .collect();
    PrefixSumCover::new(vectors, target, k)
        .expect("slope-2 staircase is positive and non-increasing")
}

/// A Prefix Sum Cover instance rendered as nested active-time scheduling.
#[derive(Debug, Clone)]
pub struct ActiveTimeReduction {
    /// The scheduling instance.
    pub instance: Instance,
    /// Active slots forced by the rigid jobs: `n·(W−1)`.
    pub base_slots: i64,
    /// The PSC budget `k`: the instance has active time `≤ base_slots + k`
    /// iff the PSC instance is solvable.
    pub k: usize,
    /// `W` used for window sizing.
    pub w: i64,
}

/// Prefix Sum Cover → nested active-time scheduling (paper §6).
pub fn psc_to_active_time(psc: &PrefixSumCover) -> ActiveTimeReduction {
    let d = psc.dim() as i64;
    let n = psc.vectors.len() as i64;
    // Machine j idles at rigid slot w iff [u_i]_j ≥ w (w ∈ [2, W]), i.e.
    // [u_i]_j − 1 idle rigid slots — correct whenever [u_i]_j ≤ W, so
    // W = max scalar is exactly wide enough; at least 2 so each window
    // has a special slot plus one rigid slot.
    let w = psc.max_scalar().max(2);
    let g = d * w;
    let mut jobs: Vec<Job> = Vec::new();

    // S1: rigid unit jobs pinning slots 2..=W of each window.
    for (i, u) in psc.vectors.iter().enumerate() {
        let base = i as i64 * w;
        for slot_w in 2..=w {
            let idle = u.iter().filter(|&&x| x >= slot_w).count() as i64;
            let count = g - idle;
            let t = base + slot_w - 1;
            for _ in 0..count {
                jobs.push(Job::new(t, t + 1, 1));
            }
        }
    }
    // S2: flexible unit jobs per window.
    for (i, u) in psc.vectors.iter().enumerate() {
        let base = i as i64 * w;
        let count: i64 = u.iter().sum::<i64>() - d;
        debug_assert!(count >= 0);
        for _ in 0..count {
            jobs.push(Job::new(base, base + w, 1));
        }
    }
    // S3: target jobs spanning the whole horizon.
    for &len in &psc.target {
        if len > 0 {
            jobs.push(Job::new(0, n * w, len));
        }
    }

    let instance = Instance::new(g, jobs).expect("reduction emits valid jobs");
    debug_assert!(instance.check_laminar().is_ok());
    ActiveTimeReduction { instance, base_slots: n * (w - 1), k: psc.k, w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_cover::random_set_cover;
    use atsched_baselines::exact::nested_opt;

    #[test]
    fn slope2_staircase_is_valid_psc() {
        // The paper's own counterexample shape: u = (1,0,1).
        let sc = SetCover::new(3, vec![vec![0, 2], vec![1]]).unwrap();
        let psc = set_cover_to_psc(&sc, 2);
        // Validation happened inside; also check telescoping equivalence
        // by brute force on both sides.
        assert_eq!(sc.solvable_with(2), psc.solvable());
    }

    #[test]
    fn set_cover_psc_equivalence_exhaustive() {
        for seed in 0..25u64 {
            let sc = random_set_cover(4, 4, seed);
            for k in 1..=3usize {
                let psc = set_cover_to_psc(&sc, k);
                assert_eq!(sc.solvable_with(k), psc.solvable(), "seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn psc_to_active_time_small_yes_instance() {
        // One vector u = (2,1), target (2,1), k = 1: trivially solvable.
        let psc = PrefixSumCover::new(vec![vec![2, 1]], vec![2, 1], 1).unwrap();
        let red = psc_to_active_time(&psc);
        assert!(red.instance.check_laminar().is_ok());
        let s = nested_opt(&red.instance, 0).expect("feasible");
        assert!(
            (s.active_time() as i64) <= red.base_slots + red.k as i64,
            "active {} vs base {} + k {}",
            s.active_time(),
            red.base_slots,
            red.k
        );
    }

    #[test]
    fn psc_to_active_time_no_instance_needs_more() {
        // Target too big for one vector: k = 1, but v needs both.
        let psc = PrefixSumCover::new(vec![vec![2, 1], vec![2, 1]], vec![4, 2], 1).unwrap();
        assert!(!psc.solvable());
        let red = psc_to_active_time(&psc);
        if let Some(s) = nested_opt(&red.instance, 0) {
            assert!(
                (s.active_time() as i64) > red.base_slots + red.k as i64,
                "no-instance must exceed the bound"
            );
        }
    }

    #[test]
    fn decision_equivalence_random_small() {
        // Full chain on tiny PSC instances: decision must agree with the
        // exact active-time solver.
        let cases = vec![
            PrefixSumCover::new(vec![vec![2, 1], vec![1, 1]], vec![2, 2], 1).unwrap(),
            PrefixSumCover::new(vec![vec![2, 1], vec![1, 1]], vec![2, 2], 2).unwrap(),
            PrefixSumCover::new(vec![vec![2, 2], vec![2, 1], vec![1, 1]], vec![3, 3], 2).unwrap(),
        ];
        for psc in cases {
            let red = psc_to_active_time(&psc);
            let opt = nested_opt(&red.instance, 0).map(|s| s.active_time() as i64);
            let fits = opt.is_some_and(|o| o <= red.base_slots + red.k as i64);
            assert_eq!(fits, psc.solvable(), "psc {psc:?} opt {opt:?}");
        }
    }
}
