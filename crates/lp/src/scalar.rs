//! The scalar-field abstraction the simplex solver is generic over.

use atsched_num::{Int, Ratio};
use std::fmt::{Debug, Display};

/// Numeric operations the simplex method needs.
///
/// Implemented for [`Ratio`] (exact; `is_zero` means literally zero) and
/// for `f64` (approximate; `is_zero` uses an absolute tolerance of
/// `1e-9`). The absolute tolerance is sound because the solver
/// equilibrates every tableau row to unit magnitude first — see
/// [`Scalar::row_scale`] — so `1e-9` acts as a *relative* threshold no
/// matter how the input model is scaled.
pub trait Scalar: Clone + PartialOrd + Debug + Display + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Exact conversion from a machine integer.
    fn from_i64(v: i64) -> Self;
    /// Sum.
    fn add(&self, other: &Self) -> Self;
    /// Difference.
    fn sub(&self, other: &Self) -> Self;
    /// Product.
    fn mul(&self, other: &Self) -> Self;
    /// Quotient. Callers guarantee `other` is not (numerically) zero.
    fn div(&self, other: &Self) -> Self;
    /// Additive inverse.
    fn neg(&self) -> Self;
    /// Is this (numerically) zero?
    fn is_zero(&self) -> bool;
    /// Strictly below (numerical) zero?
    fn is_negative(&self) -> bool;
    /// Strictly above (numerical) zero?
    fn is_positive(&self) -> bool {
        !self.is_zero() && !self.is_negative()
    }
    /// `self /= d` in place — the kernel of pivot-row scaling. The
    /// default just reassigns; implementations can skip work (e.g. when
    /// `self` is zero or `d` is one).
    fn div_in_place(&mut self, d: &Self) {
        *self = self.div(d);
    }
    /// `self -= f·s` in place — the kernel of row elimination. Callers
    /// guarantee `f` is nonzero; implementations may skip when `s` is
    /// zero.
    fn sub_mul_in_place(&mut self, f: &Self, s: &Self) {
        if !s.is_zero() {
            *self = self.sub(&f.mul(s));
        }
    }
    /// Row-equilibration hook. Given the largest absolute value in a
    /// tableau row (or cost vector), return the factor the row should be
    /// multiplied by to bring its magnitude near 1, or `None` to leave
    /// the row untouched.
    ///
    /// Exact fields return `None` — their comparisons are scale-free.
    /// `f64` returns the power of two `2^{-⌊log₂ max⌋}`: multiplying by
    /// it is exact (no rounding), and it turns the absolute `F64_EPS`
    /// zero test into a relative, Harris-style tolerance, so models
    /// scaled by `1e12` or `1e-6` classify pivots identically to their
    /// unit-scale counterparts.
    fn row_scale(_max_abs: &Self) -> Option<Self> {
        None
    }
    /// Could an exact field classify the *sign* of this value
    /// differently? Exact fields answer `false` — they never disagree
    /// with themselves. `f64` answers `true` inside a small band around
    /// its `F64_EPS` thresholds: a value that is not bit-exact zero but
    /// sits within the band may have either true sign once rounding is
    /// undone. The hybrid pipeline treats any pivot decision made on a
    /// marginal value as "the exact simplex might have chosen
    /// differently" and falls back.
    fn sign_is_marginal(&self) -> bool {
        false
    }
    /// Could an exact field order `self` vs `other` the other way?
    /// Exact fields answer `false`; `f64` answers `true` when the two
    /// are closer than the tolerance band yet further apart than the
    /// noise floor (a sub-noise difference reads as an exact tie, which
    /// both fields break by the same index rule — see
    /// [`Scalar::decisively_lt`]).
    fn order_is_marginal(&self, _other: &Self) -> bool {
        false
    }
    /// "Strictly less" as a *pivot decision*: exact fields compare
    /// exactly; `f64` additionally demands the gap exceed the noise
    /// floor, so that cancellation noise around an exact tie does not
    /// preempt the index tie-break the exact field would use. (A raw
    /// `<` here was the one observable divergence between the float and
    /// exact pivot walks: a −1e-17 noise "win" steals a ratio-test tie
    /// from the lower-index row.)
    fn decisively_lt(&self, other: &Self) -> bool {
        self < other
    }
    /// Lossy conversion for reporting.
    fn to_f64(&self) -> f64;
    /// Largest integer `≤ self` (exact for [`Ratio`]; rounds for `f64`).
    fn floor_int(&self) -> i64;
    /// Smallest integer `≥ self`.
    fn ceil_int(&self) -> i64;
    /// A *total* order for selection/sorting: never panics, even on
    /// values `PartialOrd` cannot order (`f64` NaN from a degenerate
    /// unchecked solve). Incomparable pairs read as equal for exact
    /// fields; `f64` delegates to [`f64::total_cmp`], which orders NaN
    /// deterministically instead.
    fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl Scalar for Ratio {
    fn zero() -> Self {
        Ratio::zero()
    }

    fn one() -> Self {
        Ratio::one()
    }

    fn from_i64(v: i64) -> Self {
        Ratio::from_i64(v)
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn sub(&self, other: &Self) -> Self {
        self - other
    }

    fn mul(&self, other: &Self) -> Self {
        self * other
    }

    fn div(&self, other: &Self) -> Self {
        self / other
    }

    fn neg(&self) -> Self {
        -self
    }

    fn is_zero(&self) -> bool {
        Ratio::is_zero(self)
    }

    fn is_negative(&self) -> bool {
        Ratio::is_negative(self)
    }

    fn div_in_place(&mut self, d: &Self) {
        // Exact arithmetic: dividing zero (most tableau entries) or by
        // one is the identity.
        if Ratio::is_zero(self) || d.is_one() {
            return;
        }
        *self = &*self / d;
    }

    fn sub_mul_in_place(&mut self, f: &Self, s: &Self) {
        if Ratio::is_zero(s) {
            return;
        }
        *self = &*self - &(f * s);
    }

    fn to_f64(&self) -> f64 {
        Ratio::to_f64(self)
    }

    fn floor_int(&self) -> i64 {
        self.floor().to_i64().expect("Ratio::floor fits i64")
    }

    fn ceil_int(&self) -> i64 {
        self.ceil().to_i64().expect("Ratio::ceil fits i64")
    }
}

/// Absolute tolerance under which an `f64` tableau entry is treated as 0.
pub(crate) const F64_EPS: f64 = 1e-9;

/// Noise floor for marginality tests. On the equilibrated (unit-scale)
/// tableau, accumulated f64 rounding error is far below this, while the
/// smallest *genuinely nonzero* rational arising from small-integer LP
/// data is far above it — so a magnitude below the floor is read as "an
/// exact zero plus rounding noise" (both fields classify it the same
/// way: zero, or a tie broken by index) rather than as an ambiguous
/// decision. Without the floor, every degenerate LP — where exact-zero
/// reduced costs and exactly tied ratios are the norm — would be flagged
/// tie-suspect by its own cancellation noise.
pub(crate) const F64_NOISE: f64 = 1e-13;

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn from_i64(v: i64) -> Self {
        v as f64
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn sub(&self, other: &Self) -> Self {
        self - other
    }

    fn mul(&self, other: &Self) -> Self {
        self * other
    }

    fn div(&self, other: &Self) -> Self {
        self / other
    }

    fn neg(&self) -> Self {
        -self
    }

    fn is_zero(&self) -> bool {
        self.abs() <= F64_EPS
    }

    fn is_negative(&self) -> bool {
        *self < -F64_EPS
    }

    fn sign_is_marginal(&self) -> bool {
        // The sign thresholds sit at ±F64_EPS; a value within twice that
        // of zero could land on either side of them once rounding is
        // undone — unless it is below the noise floor, in which case it
        // reads as an exact zero that both fields classify identically.
        let a = self.abs();
        a > F64_NOISE && a <= 2.0 * F64_EPS
    }

    fn order_is_marginal(&self, other: &Self) -> bool {
        let d = (*self - *other).abs();
        d > F64_NOISE && d <= 2.0 * F64_EPS
    }

    fn decisively_lt(&self, other: &Self) -> bool {
        *self < *other && (*other - *self) > F64_NOISE
    }

    fn row_scale(max_abs: &Self) -> Option<Self> {
        let m = max_abs.abs();
        if !m.is_finite() || m == 0.0 {
            return None;
        }
        // Exponent e with m·2⁻ᵉ ∈ [1, 2). Clamped so the scale itself
        // stays a finite normal (subnormal row maxima would otherwise
        // ask for 2^1074).
        let e = (m.log2().floor() as i32).clamp(-1020, 1020);
        if e == 0 {
            return None;
        }
        Some(2f64.powi(-e))
    }

    // No zero-skipping in the float kernels: subtracting a below-
    // tolerance value must still happen, bit-for-bit, to match the
    // out-of-place formulation.
    fn div_in_place(&mut self, d: &Self) {
        *self /= d;
    }

    fn sub_mul_in_place(&mut self, f: &Self, s: &Self) {
        *self -= f * s;
    }

    fn to_f64(&self) -> f64 {
        *self
    }

    fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        f64::total_cmp(self, other)
    }

    fn floor_int(&self) -> i64 {
        // Snap values that are within tolerance of an integer first, so
        // 2.9999999998 floors to 3 rather than 2.
        let snapped = self.round();
        if (self - snapped).abs() <= 1e-6 {
            snapped as i64
        } else {
            self.floor() as i64
        }
    }

    fn ceil_int(&self) -> i64 {
        let snapped = self.round();
        if (self - snapped).abs() <= 1e-6 {
            snapped as i64
        } else {
            self.ceil() as i64
        }
    }
}

/// Convert an exact [`Int`] into any scalar (used by LP builders that are
/// generic over the field).
pub fn scalar_from_int<S: Scalar>(v: &Int) -> S {
    match v.to_i64() {
        Some(x) => S::from_i64(x),
        None => {
            // Fall back through the decimal representation; only reachable
            // for enormous constants, which our builders never produce.
            let mut acc = S::zero();
            let ten = S::from_i64(10);
            let s = v.to_string();
            let (neg, digits) = match s.strip_prefix('-') {
                Some(rest) => (true, rest),
                None => (false, s.as_str()),
            };
            for b in digits.bytes() {
                acc = acc.mul(&ten).add(&S::from_i64((b - b'0') as i64));
            }
            if neg {
                acc.neg()
            } else {
                acc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_scalar_roundtrip() {
        let a = <Ratio as Scalar>::from_i64(7);
        let b = <Ratio as Scalar>::from_i64(2);
        assert_eq!(a.div(&b), Ratio::from_frac(7, 2));
        assert_eq!(a.div(&b).floor_int(), 3);
        assert_eq!(a.div(&b).ceil_int(), 4);
        assert!(a.sub(&a).is_zero());
        assert!(b.sub(&a).is_negative());
        assert!(a.sub(&b).is_positive());
    }

    #[test]
    fn f64_scalar_tolerances() {
        assert!(Scalar::is_zero(&1e-12));
        assert!(!Scalar::is_zero(&1e-6));
        assert!(Scalar::is_negative(&-1e-6));
        assert!(!Scalar::is_negative(&-1e-12));
        assert_eq!(2.9999999998f64.floor_int(), 3);
        assert_eq!(2.5f64.floor_int(), 2);
        assert_eq!(2.0000000001f64.ceil_int(), 2);
        assert_eq!(2.5f64.ceil_int(), 3);
    }

    #[test]
    fn total_cmp_is_total_even_on_nan() {
        use std::cmp::Ordering;
        // f64 delegates to the IEEE total order: NaN sorts above +∞,
        // so a max-by over a NaN-bearing slice picks deterministically
        // instead of panicking on an unordered pair.
        assert_eq!(Scalar::total_cmp(&1.0f64, &2.0), Ordering::Less);
        assert_eq!(Scalar::total_cmp(&f64::NAN, &f64::INFINITY), Ordering::Greater);
        assert_eq!(Scalar::total_cmp(&f64::NAN, &f64::NAN), Ordering::Equal);
        // Exact fields use the default (partial order is already total).
        let a = <Ratio as Scalar>::from_i64(1);
        let b = <Ratio as Scalar>::from_i64(2);
        assert_eq!(Scalar::total_cmp(&a, &b), Ordering::Less);
        assert_eq!(Scalar::total_cmp(&b, &b), Ordering::Equal);
    }

    #[test]
    fn row_scale_is_an_exact_power_of_two_near_the_inverse() {
        // Exact field: never scales.
        assert_eq!(<Ratio as Scalar>::row_scale(&Ratio::from_i64(1_000_000)), None);
        // f64: 2^-⌊log2⌋, bringing the magnitude into [1, 2).
        for m in [1e12f64, 3e-7, 1234.5, 0.001, 2.0_f64.powi(900)] {
            let s = <f64 as Scalar>::row_scale(&m).unwrap();
            let scaled = m * s;
            assert!((1.0..2.0).contains(&scaled), "{m} scaled to {scaled}");
            // The scale is a power of two: multiplying is exact.
            assert_eq!(s.to_bits() & ((1u64 << 52) - 1), 0);
        }
        // Already unit-magnitude rows are left untouched.
        assert_eq!(<f64 as Scalar>::row_scale(&1.5), None);
        // Degenerate maxima never produce a scale.
        assert_eq!(<f64 as Scalar>::row_scale(&0.0), None);
        assert_eq!(<f64 as Scalar>::row_scale(&f64::INFINITY), None);
        // Subnormal maxima are clamped to a finite scale.
        let s = <f64 as Scalar>::row_scale(&f64::from_bits(1)).unwrap_or(1.0);
        assert!(s.is_finite());
    }

    #[test]
    fn scalar_from_int_small_and_big() {
        let small = Int::from(123i64);
        assert_eq!(scalar_from_int::<f64>(&small), 123.0_f64);
        let big: Int = "123456789012345678901234567890".parse().unwrap();
        let as_ratio: Ratio = scalar_from_int(&big);
        assert_eq!(as_ratio, Ratio::from_int(big.clone()));
        let as_f64: f64 = scalar_from_int(&big);
        assert!((as_f64 - 1.2345678901234568e29).abs() / 1e29 < 1e-9);
        let neg: Int = "-42".parse().unwrap();
        assert_eq!(scalar_from_int::<f64>(&neg), -42.0);
    }
}
