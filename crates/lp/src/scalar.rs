//! The scalar-field abstraction the simplex solver is generic over.

use atsched_num::{Int, Ratio};
use std::fmt::{Debug, Display};

/// Numeric operations the simplex method needs.
///
/// Implemented for [`Ratio`] (exact; `is_zero` means literally zero) and
/// for `f64` (approximate; `is_zero` uses an absolute tolerance of
/// `1e-9`, which is appropriate for the well-scaled scheduling LPs this
/// workspace produces — coefficients are small integers and `g ≤ 10^6`).
pub trait Scalar: Clone + PartialOrd + Debug + Display + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Exact conversion from a machine integer.
    fn from_i64(v: i64) -> Self;
    /// Sum.
    fn add(&self, other: &Self) -> Self;
    /// Difference.
    fn sub(&self, other: &Self) -> Self;
    /// Product.
    fn mul(&self, other: &Self) -> Self;
    /// Quotient. Callers guarantee `other` is not (numerically) zero.
    fn div(&self, other: &Self) -> Self;
    /// Additive inverse.
    fn neg(&self) -> Self;
    /// Is this (numerically) zero?
    fn is_zero(&self) -> bool;
    /// Strictly below (numerical) zero?
    fn is_negative(&self) -> bool;
    /// Strictly above (numerical) zero?
    fn is_positive(&self) -> bool {
        !self.is_zero() && !self.is_negative()
    }
    /// `self /= d` in place — the kernel of pivot-row scaling. The
    /// default just reassigns; implementations can skip work (e.g. when
    /// `self` is zero or `d` is one).
    fn div_in_place(&mut self, d: &Self) {
        *self = self.div(d);
    }
    /// `self -= f·s` in place — the kernel of row elimination. Callers
    /// guarantee `f` is nonzero; implementations may skip when `s` is
    /// zero.
    fn sub_mul_in_place(&mut self, f: &Self, s: &Self) {
        if !s.is_zero() {
            *self = self.sub(&f.mul(s));
        }
    }
    /// Lossy conversion for reporting.
    fn to_f64(&self) -> f64;
    /// Largest integer `≤ self` (exact for [`Ratio`]; rounds for `f64`).
    fn floor_int(&self) -> i64;
    /// Smallest integer `≥ self`.
    fn ceil_int(&self) -> i64;
}

impl Scalar for Ratio {
    fn zero() -> Self {
        Ratio::zero()
    }

    fn one() -> Self {
        Ratio::one()
    }

    fn from_i64(v: i64) -> Self {
        Ratio::from_i64(v)
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn sub(&self, other: &Self) -> Self {
        self - other
    }

    fn mul(&self, other: &Self) -> Self {
        self * other
    }

    fn div(&self, other: &Self) -> Self {
        self / other
    }

    fn neg(&self) -> Self {
        -self
    }

    fn is_zero(&self) -> bool {
        Ratio::is_zero(self)
    }

    fn is_negative(&self) -> bool {
        Ratio::is_negative(self)
    }

    fn div_in_place(&mut self, d: &Self) {
        // Exact arithmetic: dividing zero (most tableau entries) or by
        // one is the identity.
        if Ratio::is_zero(self) || d.is_one() {
            return;
        }
        *self = &*self / d;
    }

    fn sub_mul_in_place(&mut self, f: &Self, s: &Self) {
        if Ratio::is_zero(s) {
            return;
        }
        *self = &*self - &(f * s);
    }

    fn to_f64(&self) -> f64 {
        Ratio::to_f64(self)
    }

    fn floor_int(&self) -> i64 {
        self.floor().to_i64().expect("Ratio::floor fits i64")
    }

    fn ceil_int(&self) -> i64 {
        self.ceil().to_i64().expect("Ratio::ceil fits i64")
    }
}

/// Absolute tolerance under which an `f64` tableau entry is treated as 0.
pub(crate) const F64_EPS: f64 = 1e-9;

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn from_i64(v: i64) -> Self {
        v as f64
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn sub(&self, other: &Self) -> Self {
        self - other
    }

    fn mul(&self, other: &Self) -> Self {
        self * other
    }

    fn div(&self, other: &Self) -> Self {
        self / other
    }

    fn neg(&self) -> Self {
        -self
    }

    fn is_zero(&self) -> bool {
        self.abs() <= F64_EPS
    }

    fn is_negative(&self) -> bool {
        *self < -F64_EPS
    }

    // No zero-skipping in the float kernels: subtracting a below-
    // tolerance value must still happen, bit-for-bit, to match the
    // out-of-place formulation.
    fn div_in_place(&mut self, d: &Self) {
        *self /= d;
    }

    fn sub_mul_in_place(&mut self, f: &Self, s: &Self) {
        *self -= f * s;
    }

    fn to_f64(&self) -> f64 {
        *self
    }

    fn floor_int(&self) -> i64 {
        // Snap values that are within tolerance of an integer first, so
        // 2.9999999998 floors to 3 rather than 2.
        let snapped = self.round();
        if (self - snapped).abs() <= 1e-6 {
            snapped as i64
        } else {
            self.floor() as i64
        }
    }

    fn ceil_int(&self) -> i64 {
        let snapped = self.round();
        if (self - snapped).abs() <= 1e-6 {
            snapped as i64
        } else {
            self.ceil() as i64
        }
    }
}

/// Convert an exact [`Int`] into any scalar (used by LP builders that are
/// generic over the field).
pub fn scalar_from_int<S: Scalar>(v: &Int) -> S {
    match v.to_i64() {
        Some(x) => S::from_i64(x),
        None => {
            // Fall back through the decimal representation; only reachable
            // for enormous constants, which our builders never produce.
            let mut acc = S::zero();
            let ten = S::from_i64(10);
            let s = v.to_string();
            let (neg, digits) = match s.strip_prefix('-') {
                Some(rest) => (true, rest),
                None => (false, s.as_str()),
            };
            for b in digits.bytes() {
                acc = acc.mul(&ten).add(&S::from_i64((b - b'0') as i64));
            }
            if neg {
                acc.neg()
            } else {
                acc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_scalar_roundtrip() {
        let a = <Ratio as Scalar>::from_i64(7);
        let b = <Ratio as Scalar>::from_i64(2);
        assert_eq!(a.div(&b), Ratio::from_frac(7, 2));
        assert_eq!(a.div(&b).floor_int(), 3);
        assert_eq!(a.div(&b).ceil_int(), 4);
        assert!(a.sub(&a).is_zero());
        assert!(b.sub(&a).is_negative());
        assert!(a.sub(&b).is_positive());
    }

    #[test]
    fn f64_scalar_tolerances() {
        assert!(Scalar::is_zero(&1e-12));
        assert!(!Scalar::is_zero(&1e-6));
        assert!(Scalar::is_negative(&-1e-6));
        assert!(!Scalar::is_negative(&-1e-12));
        assert_eq!(2.9999999998f64.floor_int(), 3);
        assert_eq!(2.5f64.floor_int(), 2);
        assert_eq!(2.0000000001f64.ceil_int(), 2);
        assert_eq!(2.5f64.ceil_int(), 3);
    }

    #[test]
    fn scalar_from_int_small_and_big() {
        let small = Int::from(123i64);
        assert_eq!(scalar_from_int::<f64>(&small), 123.0_f64);
        let big: Int = "123456789012345678901234567890".parse().unwrap();
        let as_ratio: Ratio = scalar_from_int(&big);
        assert_eq!(as_ratio, Ratio::from_int(big.clone()));
        let as_f64: f64 = scalar_from_int(&big);
        assert!((as_f64 - 1.2345678901234568e29).abs() / 1e29 < 1e-9);
        let neg: Int = "-42".parse().unwrap();
        assert_eq!(scalar_from_int::<f64>(&neg), -42.0);
    }
}
