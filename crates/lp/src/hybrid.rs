//! The f64-first, exactly-verified solve pipeline.
//!
//! Exact rational simplex dominates solve time, yet on well-behaved
//! instances the float simplex finds the *same basis* orders of
//! magnitude faster. The hybrid path exploits that:
//!
//! 1. presolve exactly (presolve is field-generic and stays rational);
//! 2. run the two-phase simplex on an `f64` image of the reduced model
//!    and keep only the final basis — a purely combinatorial object;
//! 3. re-derive the primal/dual pair for that basis in exact arithmetic
//!    ([`crate::verify`]): two dense Gaussian solves, no pivoting;
//! 4. certify the pair with [`Model::check_duality`] — exact primal
//!    feasibility, dual feasibility, and strong duality (which implies
//!    complementary slackness). A certified pair proves the re-derived
//!    point is an exact optimum, so the **objective is bit-identical**
//!    to what the cold exact simplex would return. The *vertex* is not
//!    required to be unique — nested active-time LPs are massively
//!    degenerate, so a uniqueness demand would decline essentially
//!    every real instance. Vertex identity comes from the pivot
//!    trajectory instead: the float run follows the same deterministic
//!    pivot rule as the exact one and flags itself *tie-suspect*
//!    whenever any pivot decision was made inside the tolerance band
//!    (where exact arithmetic could have decided differently); a
//!    certified non-suspect run made every decision by a clear margin
//!    and therefore walked the exact solver's own pivot path. Suspect
//!    runs fall back. Schedule-level identity is additionally enforced
//!    one layer up (the solver's Lemma 4.1 deficiency check on the
//!    rounded certificate, plus the corpus-wide `batch --check` gate);
//! 5. on any typed failure ([`FallbackReason`]), fall back to the cold
//!    exact simplex. Fallbacks are counted in the obs registry under
//!    `lp.hybrid_fallbacks` (with a per-reason breakdown under
//!    `lp.hybrid_fallback.*`); verified fast paths under
//!    `lp.hybrid_verified`.
//!
//! The unchecked variant (`certify = false`) skips step 4: the solution
//! is still *re-derived exactly* and checked primal-feasible, but its
//! optimality rests on the float pivoting — callers opt in via
//! `PrecisionMode::F64Unchecked` for throwaway sweeps.

use crate::model::{Constraint, LpError, LpStatus, Model, Solution, SolveInfo};
use crate::presolve::{inflate, presolve};
use crate::simplex::{solve_core, solve_core_with};
use crate::verify::{rederive, VerifyError};
use atsched_num::Ratio;
use atsched_obs as obs;
use std::fmt;

/// How a hybrid solve reached its answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybridOutcome {
    /// The float basis was re-derived and certified exactly; the result
    /// is bit-identical to a cold exact solve.
    Verified,
    /// Exact re-derivation without the optimality/uniqueness
    /// certificate (`certify = false`).
    Unchecked,
    /// The float basis could not be certified; the result comes from
    /// the cold exact simplex (still exact, just slower).
    Fallback(FallbackReason),
}

impl HybridOutcome {
    /// Did this solve pay for the exact simplex?
    pub fn fell_back(&self) -> bool {
        matches!(self, HybridOutcome::Fallback(_))
    }
}

/// Why the fast path was abandoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallbackReason {
    /// The float simplex hit its iteration cap.
    FloatIterationLimit,
    /// Some pivot decision in the float run was decided inside the
    /// tolerance band: the exact simplex could legitimately have pivoted
    /// differently and reached a different (equally optimal) vertex, so
    /// vertex identity with the cold solve is not assured. Only raised
    /// when certifying — unchecked mode accepts any exact optimum.
    TieSuspect,
    /// The float simplex reported a non-optimal status, which is never
    /// trusted (the exact solve decides infeasibility/unboundedness).
    FloatStatus(LpStatus),
    /// Exact re-derivation of the float basis failed.
    Verify(VerifyError),
    /// The re-derived pair failed the exact optimality certificate
    /// (dual feasibility or strong duality); the message names the
    /// first violated condition.
    Certificate(String),
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackReason::FloatIterationLimit => write!(f, "float simplex iteration limit"),
            FallbackReason::TieSuspect => {
                write!(f, "float pivot decided inside the tolerance band")
            }
            FallbackReason::FloatStatus(s) => write!(f, "float simplex status {s:?}"),
            FallbackReason::Verify(e) => write!(f, "{e}"),
            FallbackReason::Certificate(msg) => write!(f, "certificate rejected: {msg}"),
        }
    }
}

impl Model<Ratio> {
    /// Solve via the f64-first pipeline, falling back to the exact
    /// simplex whenever the float basis cannot be certified.
    ///
    /// With `certify = true` the returned solution is a *proven exact
    /// optimum*: the objective is bit-identical to
    /// [`Model::solve_detailed`] in every case (on the fast path the
    /// duality certificate proves it; on fallback it *is* the exact
    /// solve). On degenerate models the certified vertex is not
    /// required to coincide with the cold solve's choice, though the
    /// shared deterministic pivot rule makes it do so in practice.
    /// With `certify = false` the optimality check is skipped — the
    /// solution is still exactly re-derived and primal-feasible, but a
    /// float mis-pivot could leave it suboptimal.
    pub fn solve_hybrid(
        &self,
        certify: bool,
    ) -> Result<(Solution<Ratio>, SolveInfo, HybridOutcome), LpError> {
        solve_hybrid_impl(self, certify)
    }
}

fn solve_hybrid_impl(
    model: &Model<Ratio>,
    certify: bool,
) -> Result<(Solution<Ratio>, SolveInfo, HybridOutcome), LpError> {
    obs::counter_add("lp.solves", 1);
    let mut info =
        SolveInfo { vars: model.num_vars(), rows: model.num_constraints(), ..SolveInfo::default() };
    let pre = match presolve(model) {
        Err(()) => {
            // Presolve is exact: this infeasibility needs no float input
            // and no fallback.
            return Ok((
                Solution {
                    status: LpStatus::Infeasible,
                    objective: Ratio::zero(),
                    values: vec![Ratio::zero(); model.num_vars()],
                },
                info,
                HybridOutcome::Verified,
            ));
        }
        Ok(p) => p,
    };
    info.presolve_fixed = pre.vars_fixed;
    info.presolve_rows_dropped = pre.rows_dropped;
    obs::counter_add("lp.presolve_fixed", pre.vars_fixed as u64);
    obs::counter_add("lp.presolve_rows_dropped", pre.rows_dropped as u64);

    // --- fast path: float solve, exact re-derivation, certificate ----------
    let fmodel = to_f64_model(&pre.model);
    let mut reduced: Option<Solution<Ratio>> = None;
    let mut reason: Option<FallbackReason> = None;
    // Equilibration off: the probe must walk the *same* LP as the exact
    // solver for the tie-suspect guard to imply vertex identity (see
    // [`solve_core_with`]).
    match solve_core_with(&fmodel, false, false) {
        Err(LpError::IterationLimit) => reason = Some(FallbackReason::FloatIterationLimit),
        Ok(core) => {
            info.pivots += core.pivots;
            if core.solution.status != LpStatus::Optimal {
                reason = Some(FallbackReason::FloatStatus(core.solution.status));
            } else if certify && core.marginal {
                // A tie-suspect basis may still be exactly optimal, but
                // it may be a *different* optimal vertex than the cold
                // solve's — and certify mode promises the cold solve's
                // answer. Skip the exact re-derivation work entirely.
                reason = Some(FallbackReason::TieSuspect);
            } else {
                let fb = core.basis.expect("optimal core solve carries a basis");
                match rederive(&pre.model, &fb) {
                    Err(e) => reason = Some(FallbackReason::Verify(e)),
                    Ok(red) => {
                        if certify {
                            // `rederive` already proved exact primal
                            // feasibility; `check_duality` adds dual
                            // feasibility and strong duality, which
                            // together certify optimality.
                            match pre.model.check_duality(&red.solution, &red.duals) {
                                Ok(()) => reduced = Some(red.solution),
                                Err(msg) => reason = Some(FallbackReason::Certificate(msg)),
                            }
                        } else {
                            reduced = Some(red.solution);
                        }
                    }
                }
            }
        }
    }

    if let Some(reduced) = reduced {
        obs::counter_add("lp.hybrid_verified", 1);
        let values = inflate(&pre.var_disposition, &reduced.values);
        let objective = model.objective_at(&values);
        let outcome = if certify { HybridOutcome::Verified } else { HybridOutcome::Unchecked };
        return Ok((Solution { status: LpStatus::Optimal, objective, values }, info, outcome));
    }

    // --- fallback: cold exact simplex on the presolved model ---------------
    let reason = reason.expect("no reduced solution implies a recorded reason");
    obs::counter_add("lp.hybrid_fallbacks", 1);
    obs::counter_add(
        match &reason {
            FallbackReason::FloatIterationLimit => "lp.hybrid_fallback.iteration_limit",
            FallbackReason::TieSuspect => "lp.hybrid_fallback.tie_suspect",
            FallbackReason::FloatStatus(_) => "lp.hybrid_fallback.float_status",
            FallbackReason::Verify(_) => "lp.hybrid_fallback.verify",
            FallbackReason::Certificate(_) => "lp.hybrid_fallback.certificate",
        },
        1,
    );
    let core = solve_core(&pre.model, false)?;
    info.pivots += core.pivots;
    let solution = match core.solution.status {
        LpStatus::Optimal => {
            let values = inflate(&pre.var_disposition, &core.solution.values);
            let objective = model.objective_at(&values);
            Solution { status: LpStatus::Optimal, objective, values }
        }
        status => Solution {
            status,
            objective: Ratio::zero(),
            values: vec![Ratio::zero(); model.num_vars()],
        },
    };
    Ok((solution, info, HybridOutcome::Fallback(reason)))
}

/// Lossy image of an exact model, used only to pick a basis. Any damage
/// the conversion does (overflow to ±inf, sub-tolerance coefficients
/// rounding to zero) is caught by the exact verification and routed to
/// the fallback.
fn to_f64_model(m: &Model<Ratio>) -> Model<f64> {
    Model {
        names: m.names.clone(),
        objective: m.objective.iter().map(Ratio::to_f64).collect(),
        constraints: m
            .constraints
            .iter()
            .map(|c| Constraint {
                terms: c.terms.iter().map(|(i, v)| (*i, v.to_f64())).collect(),
                cmp: c.cmp,
                rhs: c.rhs.to_f64(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cmp;
    use proptest::prelude::*;

    fn ri(v: i64) -> Ratio {
        Ratio::from_i64(v)
    }

    fn rf(a: i64, b: i64) -> Ratio {
        Ratio::from_frac(a, b)
    }

    #[test]
    fn hybrid_matches_exact_bit_for_bit_on_unique_optimum() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(2));
        let y = m.add_var("y", ri(3));
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Ge, ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(-1))], Cmp::Eq, rf(1, 3));
        let (hy, _, outcome) = m.solve_hybrid(true).unwrap();
        assert_eq!(outcome, HybridOutcome::Verified);
        let cold = m.solve().unwrap();
        assert_eq!(hy.status, LpStatus::Optimal);
        assert_eq!(hy.objective, cold.objective);
        assert_eq!(hy.values, cold.values);
        assert_eq!(hy.objective, rf(7, 3));
    }

    #[test]
    fn hybrid_certifies_degenerate_optimum_without_fallback() {
        // min x + y s.t. x + y ≥ 1 — a whole optimal segment. The
        // duality certificate proves optimality without demanding a
        // unique vertex, so the fast path must hold (real nested LPs
        // are degenerate like this essentially always), and the shared
        // pivot rule lands on the same vertex as the cold solve.
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        let y = m.add_var("y", ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Ge, ri(1));
        let (hy, _, outcome) = m.solve_hybrid(true).unwrap();
        assert_eq!(outcome, HybridOutcome::Verified, "degenerate optimum must still certify");
        let cold = m.solve().unwrap();
        assert_eq!(hy.objective, cold.objective);
        assert_eq!(hy.values, cold.values);
    }

    #[test]
    fn hybrid_handles_infeasible_and_unbounded() {
        let mut inf: Model<Ratio> = Model::new();
        let x = inf.add_var("x", ri(0));
        inf.add_constraint(vec![(x, ri(1))], Cmp::Ge, ri(2));
        inf.add_constraint(vec![(x, ri(1))], Cmp::Le, ri(1));
        let (sol, _, _) = inf.solve_hybrid(true).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);

        let mut unb: Model<Ratio> = Model::new();
        let x = unb.add_var("x", ri(-1));
        unb.add_constraint(vec![(x, ri(1))], Cmp::Ge, ri(1));
        let (sol, _, outcome) = unb.solve_hybrid(true).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
        assert!(outcome.fell_back(), "non-optimal float status is never trusted");
    }

    #[test]
    fn unchecked_mode_rederives_exactly_without_certificate() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        let y = m.add_var("y", ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(2))], Cmp::Ge, ri(3));
        m.add_constraint(vec![(x, ri(3)), (y, ri(1))], Cmp::Ge, ri(4));
        let (sol, _, outcome) = m.solve_hybrid(false).unwrap();
        assert_eq!(outcome, HybridOutcome::Unchecked);
        // The values are exact rationals, not float snaps.
        assert_eq!(sol.objective, ri(2));
        assert_eq!(sol.values, vec![ri(1), ri(1)]);
    }

    #[test]
    fn presolve_infeasibility_needs_no_float_run() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        m.add_constraint(vec![(x, ri(1))], Cmp::Le, ri(-1));
        let (sol, _, outcome) = m.solve_hybrid(true).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
        assert_eq!(outcome, HybridOutcome::Verified);
    }

    proptest! {
        /// Hybrid ≡ exact on random feasible LPs: same status, bit-equal
        /// objective, and an exactly feasible point. The vertex is only
        /// *expected* to match (shared pivot rule), not contractually —
        /// the certificate proves optimality, so on alternate-optima
        /// models a differing vertex would still be exact; the generator
        /// is biased toward exactly those degenerate/near-tie cases.
        #[test]
        fn prop_hybrid_equals_exact(
            seed_rows in proptest::collection::vec(
                proptest::collection::vec(-4i64..5, 3), 1..6),
            x0 in proptest::collection::vec(0i64..4, 3),
            costs in proptest::collection::vec(0i64..6, 3),
            senses in proptest::collection::vec(0u8..3, 1..6),
            // Near-tie knob: duplicate a row with an off-by-one RHS to
            // force degenerate vertices and close ratio-test ties.
            dup in any::<bool>(),
        ) {
            let mut m: Model<Ratio> = Model::new();
            let vars: Vec<_> = (0..3).map(|i| m.add_var(format!("x{i}"), ri(costs[i]))).collect();
            for (row, s) in seed_rows.iter().zip(senses.iter()) {
                let dot: i64 = row.iter().zip(&x0).map(|(a, b)| a * b).sum();
                let terms: Vec<_> = vars.iter().zip(row).map(|(v, c)| (*v, ri(*c))).collect();
                match s {
                    0 => m.add_constraint(terms, Cmp::Ge, ri(dot - 1)),
                    1 => m.add_constraint(terms, Cmp::Le, ri(dot + 1)),
                    _ => m.add_constraint(terms, Cmp::Eq, ri(dot)),
                }
            }
            if dup && !seed_rows.is_empty() {
                let row = &seed_rows[0];
                let dot: i64 = row.iter().zip(&x0).map(|(a, b)| a * b).sum();
                let terms: Vec<_> = vars.iter().zip(row).map(|(v, c)| (*v, ri(*c))).collect();
                m.add_constraint(terms, Cmp::Ge, ri(dot));
            }
            let (hy, _, _) = m.solve_hybrid(true).unwrap();
            let cold = m.solve().unwrap();
            prop_assert_eq!(hy.status, cold.status);
            if cold.status == LpStatus::Optimal {
                prop_assert_eq!(&hy.objective, &cold.objective);
                prop_assert!(m.is_feasible(&hy.values));
                prop_assert_eq!(m.objective_at(&hy.values), cold.objective);
            }
        }
    }
}
