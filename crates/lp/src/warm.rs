//! Warm-start by certificate reuse.
//!
//! The simplex solver keeps no basis between solves, so "warm starting"
//! here does not mean seeding a pivot sequence. Instead, a prior
//! primal/dual pair `(x, y)` — typically from [`Model::solve_with_duals`]
//! on an earlier, closely related model — is *checked* against the new
//! model, and reused outright when it is provably the unique optimum:
//!
//! 1. **Optimality.** `x` is primal feasible, `y` is dual feasible with
//!    the right signs, and `cᵀx = bᵀy` exactly ([`Model::check_duality`]).
//!    Strong duality of a feasible pair already implies complementary
//!    slackness, so `(x, y)` certifies that `x` is *an* optimum.
//! 2. **Uniqueness.** Let `Z = {v : r_v > 0}` be the variables with
//!    strictly positive reduced cost `r_v = c_v − (Aᵀy)_v`, `S` its
//!    complement, and `T = {i : y_i ≠ 0}` the rows with active duals.
//!    Complementary slackness forces *every* optimal `x′` to vanish on
//!    `Z` and to satisfy the `T`-rows with equality, i.e.
//!    `A[T,S]·x′_S = b_T`. When `A[T,S]` has full column rank `|S|`
//!    (checked by exact Gaussian elimination), that system has at most
//!    one solution — so `x′ = x` and reuse is bit-identical to whatever
//!    a cold solve would return.
//!
//! When either check fails the candidate is declined (`None`) and the
//! caller falls back to a cold solve; declining is always safe. On the
//! exact [`atsched_num::Ratio`] field every comparison above is
//! bit-for-bit, which is the instantiation the incremental solver uses.

use crate::model::{Cmp, LpStatus, Model, Solution};
use crate::scalar::Scalar;
use std::fmt;

/// Why a warm-start certificate was declined by
/// [`Model::try_warm_detailed`]. Every variant is a safe, expected
/// outcome that should route the caller to a cold solve — in particular
/// a certificate derived from a floating-point basis that turns out to
/// be singular or rank-deficient in exact arithmetic is *declined with a
/// typed reason*, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarmDecline {
    /// `x` / `y` lengths don't match the model.
    ArityMismatch,
    /// `(x, y)` is not an exact optimality certificate; the message
    /// names the first violated condition.
    NotOptimal(String),
    /// Fewer tight rows than support columns — the tight system cannot
    /// pin a unique optimum.
    Underdetermined,
    /// `A[T,S]` is rank-deficient: the optimum is not unique, so reuse
    /// could diverge from whatever vertex a cold solve would pick.
    NotUnique,
}

impl fmt::Display for WarmDecline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarmDecline::ArityMismatch => write!(f, "certificate arity mismatch"),
            WarmDecline::NotOptimal(msg) => write!(f, "not an optimality certificate: {msg}"),
            WarmDecline::Underdetermined => write!(f, "tight rows cannot pin the optimum"),
            WarmDecline::NotUnique => write!(f, "optimum is not unique"),
        }
    }
}

impl std::error::Error for WarmDecline {}

impl<S: Scalar> Model<S> {
    /// Try to reuse a prior primal/dual certificate `(x, y)` as this
    /// model's optimum.
    ///
    /// Returns the ready-made [`Solution`] when `(x, y)` proves both
    /// optimality *and* uniqueness of the optimum (see the module docs);
    /// `None` otherwise, in which case the caller should solve cold. A
    /// `Some` result is exactly what [`Model::solve`] would return.
    pub fn try_warm(&self, x: &[S], y: &[S]) -> Option<Solution<S>> {
        self.try_warm_detailed(x, y).ok()
    }

    /// [`Model::try_warm`] with a typed reason for every decline.
    ///
    /// Incremental sessions use the boolean form; the detailed form
    /// exists for callers that want to log or count decline causes.
    /// (The hybrid f64-first pipeline deliberately does *not* use this
    /// certificate: it needs optimality, not uniqueness — nested LPs
    /// are degenerate enough that demanding uniqueness would fall back
    /// on essentially every instance.)
    pub fn try_warm_detailed(&self, x: &[S], y: &[S]) -> Result<Solution<S>, WarmDecline> {
        if x.len() != self.num_vars() || y.len() != self.num_constraints() {
            return Err(WarmDecline::ArityMismatch);
        }
        let candidate = Solution {
            status: LpStatus::Optimal,
            objective: self.objective_at(x),
            values: x.to_vec(),
        };
        if let Err(msg) = self.check_duality(&candidate, y) {
            return Err(WarmDecline::NotOptimal(msg));
        }

        // Reduced costs r_v = c_v − Σ_i a_{iv}·y_i. Dual feasibility
        // (checked above) guarantees r_v ≥ 0.
        let mut reduced: Vec<S> = self.objective.clone();
        for (c, yi) in self.constraints.iter().zip(y) {
            if yi.is_zero() {
                continue;
            }
            for (v, coef) in &c.terms {
                reduced[*v] = reduced[*v].sub(&coef.mul(yi));
            }
        }
        let support: Vec<usize> = (0..self.num_vars()).filter(|&v| reduced[v].is_zero()).collect();
        let tight: Vec<usize> = (0..self.num_constraints())
            .filter(|&i| !y[i].is_zero() || matches!(self.constraints[i].cmp, Cmp::Eq))
            .collect();
        if tight.len() < support.len() {
            return Err(WarmDecline::Underdetermined);
        }

        // A[T,S] must have full column rank |S| for the optimum to be
        // pinned uniquely. Dense Gaussian elimination, exact on Ratio.
        let mut mat: Vec<Vec<S>> = tight
            .iter()
            .map(|&i| {
                let row = &self.constraints[i];
                support
                    .iter()
                    .map(|&v| {
                        row.terms
                            .iter()
                            .find(|(idx, _)| *idx == v)
                            .map_or_else(S::zero, |(_, c)| c.clone())
                    })
                    .collect()
            })
            .collect();
        let mut rank = 0usize;
        for col in 0..support.len() {
            // No eliminable pivot for this column ⇒ rank-deficient ⇒
            // multiple optima. Typed decline, never a panic: float-
            // derived certificates routinely land here.
            let pivot = (rank..mat.len())
                .find(|&r| !mat[r][col].is_zero())
                .ok_or(WarmDecline::NotUnique)?;
            mat.swap(rank, pivot);
            let (head, tail) = mat.split_at_mut(rank + 1);
            let prow = &head[rank];
            let pval = prow[col].clone();
            for row in tail {
                if row[col].is_zero() {
                    continue;
                }
                let f = row[col].div(&pval);
                for c in col..support.len() {
                    row[c].sub_mul_in_place(&f, &prow[c]);
                }
            }
            rank += 1;
        }
        // The loop completes only when every support column found a
        // pivot, i.e. rank == support.len(): the optimum is unique.
        Ok(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_num::Ratio;

    fn r(v: i64) -> Ratio {
        Ratio::from_i64(v)
    }

    /// min x + y  s.t.  x + 2y ≥ 3,  3x + y ≥ 4 — unique optimum (1, 1).
    fn unique_model() -> Model<Ratio> {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", r(1));
        let y = m.add_var("y", r(1));
        m.add_constraint(vec![(x, r(1)), (y, r(2))], Cmp::Ge, r(3));
        m.add_constraint(vec![(x, r(3)), (y, r(1))], Cmp::Ge, r(4));
        m
    }

    #[test]
    fn reuses_a_valid_certificate_bit_identically() {
        let m = unique_model();
        let (sol, duals) = m.solve_with_duals().unwrap();
        let warm = m.try_warm(&sol.values, &duals).expect("certificate must be accepted");
        assert_eq!(warm.objective, sol.objective);
        assert_eq!(warm.values, sol.values);
        let cold = m.solve().unwrap();
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values, cold.values);
    }

    #[test]
    fn declines_wrong_arity_and_suboptimal_points() {
        let m = unique_model();
        let (sol, duals) = m.solve_with_duals().unwrap();
        assert!(m.try_warm(&sol.values[..1], &duals).is_none());
        assert!(m.try_warm(&sol.values, &duals[..1]).is_none());
        // Feasible but suboptimal point: (3, 0) — strong duality fails.
        assert!(m.try_warm(&[r(3), r(0)], &duals).is_none());
        // Infeasible point.
        assert!(m.try_warm(&[r(0), r(0)], &duals).is_none());
    }

    #[test]
    fn declines_certificates_from_a_changed_model() {
        let m = unique_model();
        let (sol, duals) = m.solve_with_duals().unwrap();
        // Same shape, different rhs: the old optimum is infeasible.
        let mut changed: Model<Ratio> = Model::new();
        let x = changed.add_var("x", r(1));
        let y = changed.add_var("y", r(1));
        changed.add_constraint(vec![(x, r(1)), (y, r(2))], Cmp::Ge, r(5));
        changed.add_constraint(vec![(x, r(3)), (y, r(1))], Cmp::Ge, r(4));
        assert!(changed.try_warm(&sol.values, &duals).is_none());
    }

    #[test]
    fn declines_when_the_optimum_is_not_unique() {
        // min x + y  s.t.  x + y ≥ 1: every point on the segment is
        // optimal, so no certificate can pin the cold solve's choice.
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", r(1));
        let y = m.add_var("y", r(1));
        m.add_constraint(vec![(x, r(1)), (y, r(1))], Cmp::Ge, r(1));
        let (sol, duals) = m.solve_with_duals().unwrap();
        // The pair is a perfectly valid *optimality* certificate …
        assert!(m.check_duality(&sol, &duals).is_ok());
        // … but try_warm must refuse it: A[T,S] is 1×2, rank 1 < 2.
        assert!(m.try_warm(&sol.values, &duals).is_none());
    }

    #[test]
    fn detailed_declines_carry_typed_reasons() {
        let m = unique_model();
        let (sol, duals) = m.solve_with_duals().unwrap();
        assert_eq!(
            m.try_warm_detailed(&sol.values[..1], &duals).err(),
            Some(WarmDecline::ArityMismatch)
        );
        assert!(matches!(
            m.try_warm_detailed(&[r(3), r(0)], &duals),
            Err(WarmDecline::NotOptimal(_))
        ));

        // min x + y  s.t.  x + y ≥ 1: support {x, y} but only one tight
        // row — underdetermined.
        let mut seg: Model<Ratio> = Model::new();
        let x = seg.add_var("x", r(1));
        let y = seg.add_var("y", r(1));
        seg.add_constraint(vec![(x, r(1)), (y, r(1))], Cmp::Ge, r(1));
        let (sol, duals) = seg.solve_with_duals().unwrap();
        assert_eq!(
            seg.try_warm_detailed(&sol.values, &duals).err(),
            Some(WarmDecline::Underdetermined)
        );

        // Zero objective with two dependent equalities: enough tight
        // rows, but A[T,S] is rank-deficient — the Gaussian elimination
        // must decline (typed), not panic on the missing pivot.
        let mut dep: Model<Ratio> = Model::new();
        let x = dep.add_var("x", r(0));
        let y = dep.add_var("y", r(0));
        dep.add_constraint(vec![(x, r(1)), (y, r(1))], Cmp::Eq, r(1));
        dep.add_constraint(vec![(x, r(2)), (y, r(2))], Cmp::Eq, r(2));
        let (sol, duals) = dep.solve_with_duals().unwrap();
        assert_eq!(dep.try_warm_detailed(&sol.values, &duals).err(), Some(WarmDecline::NotUnique));
    }

    #[test]
    fn empty_model_certificate_is_accepted() {
        let m: Model<Ratio> = Model::new();
        let warm = m.try_warm(&[], &[]).expect("empty certificate is trivially unique");
        assert!(warm.values.is_empty());
        assert!(Scalar::is_zero(&warm.objective));
    }

    #[test]
    fn equality_rows_with_zero_dual_still_pin_the_optimum() {
        // min 0·x  s.t.  x = 2. Objective ignores x, so the dual on the
        // equality row is 0 — but the Eq row itself still constrains
        // every optimal point and must count as tight.
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", r(0));
        m.add_constraint(vec![(x, r(1))], Cmp::Eq, r(2));
        let (sol, duals) = m.solve_with_duals().unwrap();
        let warm = m.try_warm(&sol.values, &duals).expect("Eq row pins x uniquely");
        assert_eq!(warm.values, vec![r(2)]);
    }
}
