//! Exact re-derivation of a simplex basis found in floating point.
//!
//! The hybrid pipeline runs the simplex in `f64` and keeps only its
//! *final basis* — a combinatorial object (which columns are basic in
//! which surviving rows) that is immune to rounding noise whenever the
//! float run pivoted correctly. This module re-derives the primal/dual
//! pair for that basis from scratch in the caller's scalar field:
//!
//! * primal: solve `B·x_B = b` — one Gaussian solve, no simplex
//!   pivoting;
//! * dual:   solve `Bᵀ·ŷ = c_B` and map back through the row-sign
//!   normalization, matching the convention of
//!   [`Model::solve_with_duals`](crate::Model::solve_with_duals).
//!
//! Neither solve is dense in the basis dimension `k`. A simplex basis
//! is dominated by slack/surplus columns, each a single `±1` in its
//! owner row; eliminating those first (exactly, by substitution)
//! shrinks both systems to the same `t×t` core over the *structural*
//! basic columns and the rows that own no basic slack — and `t`, the
//! number of positive variables at the vertex, is far below `k` on
//! nested active-time LPs. The slack elimination also pins the duals of
//! slack-owning rows to exactly zero (complementary slackness in
//! action: a row with positive surplus cannot carry a multiplier).
//! Exact Gaussian elimination on the `t×t` core costs `O(t³)` instead
//! of the dense `O(k³)` — the difference between the hybrid fast path
//! beating the exact simplex and losing to it outright on monolithic
//! instances.
//!
//! Every failure mode is a typed [`VerifyError`]; callers treat any of
//! them as "the float basis cannot be trusted" and fall back to the
//! exact simplex. Nothing here panics on a bad basis — a singular or
//! artificial-contaminated basis is an expected input, not a bug.

use crate::model::{Cmp, LpStatus, Model, Solution};
use crate::scalar::Scalar;
use crate::simplex::{effective_cmp, FinalBasis};
use std::fmt;

/// Why a floating-point basis could not be certified exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The final basis still contains an artificial column — the float
    /// run never found a genuine feasible basis.
    ArtificialInBasis,
    /// The basis matrix is singular in exact arithmetic (the float
    /// pivots divided by values that are exactly zero).
    SingularBasis,
    /// The re-derived point violates a constraint or a non-negativity
    /// bound (e.g. phase 1 dropped a row that is not exactly redundant).
    PrimalInfeasible,
    /// The re-derived pair is feasible but fails the optimality or
    /// uniqueness certificate; the message names the first violation.
    NotCertified(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::ArtificialInBasis => write!(f, "artificial column in final basis"),
            VerifyError::SingularBasis => write!(f, "basis singular in exact arithmetic"),
            VerifyError::PrimalInfeasible => write!(f, "re-derived point is infeasible"),
            VerifyError::NotCertified(msg) => write!(f, "certificate rejected: {msg}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Exactly re-derived primal/dual pair for a basis.
pub(crate) struct Rederived<S> {
    pub solution: Solution<S>,
    pub duals: Vec<S>,
}

/// Re-derive the vertex selected by `fb` on `model`, in `model`'s own
/// scalar field, and check primal feasibility. Optimality is *not*
/// checked here — see [`Model::try_warm_detailed`] for the certificate.
pub(crate) fn rederive<S: Scalar>(
    model: &Model<S>,
    fb: &FinalBasis,
) -> Result<Rederived<S>, VerifyError> {
    let n = model.num_vars();
    let m = model.num_constraints();
    if fb.n != n || fb.basis.iter().any(|&c| c >= fb.n + fb.num_slack) {
        return Err(VerifyError::ArtificialInBasis);
    }
    if fb.row_ids.iter().any(|&id| id >= m) || fb.row_ids.len() != fb.basis.len() {
        return Err(VerifyError::SingularBasis);
    }

    // Row-sign normalization and slack-column ownership, derived from
    // *this* model (exactly), mirroring the tableau layout of
    // `solve_core_inner`. If the float model normalized differently
    // (possible only when a RHS sign is decided by sub-tolerance noise),
    // the mismatch surfaces as a singular/infeasible system below —
    // never as a wrong answer.
    let flips: Vec<bool> = model.constraints.iter().map(|c| c.rhs.is_negative()).collect();
    let senses: Vec<Cmp> = model.constraints.iter().map(effective_cmp).collect();
    let mut owner_of_slack: Vec<usize> = Vec::new();
    for (i, s) in senses.iter().enumerate() {
        if matches!(s, Cmp::Le | Cmp::Ge) {
            owner_of_slack.push(i);
        }
    }
    if owner_of_slack.len() != fb.num_slack {
        return Err(VerifyError::SingularBasis);
    }

    // Normalized structural coefficient at (original row, var col < n).
    let struct_entry = |row_id: usize, col: usize| -> S {
        let c = &model.constraints[row_id];
        let v = c
            .terms
            .iter()
            .find(|(idx, _)| *idx == col)
            .map_or_else(S::zero, |(_, coef)| coef.clone());
        if flips[row_id] {
            v.neg()
        } else {
            v
        }
    };

    let k = fb.basis.len();
    let mut pos_of_row = vec![usize::MAX; m];
    for (p, &id) in fb.row_ids.iter().enumerate() {
        if pos_of_row[id] != usize::MAX {
            return Err(VerifyError::SingularBasis);
        }
        pos_of_row[id] = p;
    }

    // Eliminate basic slack columns by substitution before touching a
    // Gaussian solve. Each one is a single `±1` in its owner row, so it
    // pins that row (primal) and zeroes that row's multiplier (dual);
    // what is left is the t×t structural core. A basic slack whose
    // owner row was dropped in phase 1 is an all-zero column, and two
    // basic slacks can never share an owner — both are singular bases.
    let mut struct_cols: Vec<usize> = Vec::new();
    let mut owner_taken = vec![false; k];
    for &col in &fb.basis {
        if col < n {
            struct_cols.push(col);
            continue;
        }
        let row_id = owner_of_slack[col - n];
        let p = pos_of_row[row_id];
        if p == usize::MAX || owner_taken[p] {
            return Err(VerifyError::SingularBasis);
        }
        owner_taken[p] = true;
    }
    let core_rows: Vec<usize> = (0..k).filter(|&p| !owner_taken[p]).collect();
    debug_assert_eq!(core_rows.len(), struct_cols.len());

    // Primal core: M·x_struct = b̃ over the slack-free rows. Slack
    // values need no back-substitution — a slack is non-negative iff
    // its owner row holds at the vertex, and the full `is_feasible`
    // sweep below checks exactly that (plus the rows phase 1 dropped
    // as "redundant" based on float arithmetic).
    let mmat: Vec<Vec<S>> = core_rows
        .iter()
        .map(|&p| {
            let id = fb.row_ids[p];
            struct_cols.iter().map(|&col| struct_entry(id, col)).collect()
        })
        .collect();
    let crhs: Vec<S> = core_rows
        .iter()
        .map(|&p| {
            let id = fb.row_ids[p];
            let r = &model.constraints[id].rhs;
            if flips[id] {
                r.neg()
            } else {
                r.clone()
            }
        })
        .collect();
    let xs = solve_square(mmat.clone(), crhs).ok_or(VerifyError::SingularBasis)?;
    if xs.iter().any(|v| v.is_negative()) {
        return Err(VerifyError::PrimalInfeasible);
    }
    let mut values = vec![S::zero(); n];
    for (j, &col) in struct_cols.iter().enumerate() {
        values[col] = xs[j].clone();
    }
    if !model.is_feasible(&values) {
        return Err(VerifyError::PrimalInfeasible);
    }

    // Dual core: Mᵀ·ŷ = c_struct, then undo the row-sign
    // normalization. Matches the marker-column extraction in
    // `solve_core_inner` (there, y_i = ŷ_i for every sense, negated for
    // flipped rows). Slack-owning and dropped rows keep multiplier 0.
    let t = struct_cols.len();
    let mtmat: Vec<Vec<S>> = (0..t).map(|j| (0..t).map(|r| mmat[r][j].clone()).collect()).collect();
    let cs: Vec<S> = struct_cols.iter().map(|&col| model.objective[col].clone()).collect();
    let ys = solve_square(mtmat, cs).ok_or(VerifyError::SingularBasis)?;
    let mut duals = vec![S::zero(); m];
    for (a, &p) in core_rows.iter().enumerate() {
        let id = fb.row_ids[p];
        duals[id] = if flips[id] { ys[a].neg() } else { ys[a].clone() };
    }

    let objective = model.objective_at(&values);
    Ok(Rederived { solution: Solution { status: LpStatus::Optimal, objective, values }, duals })
}

/// Dense Gaussian solve of `mat·x = rhs` with first-nonzero pivoting
/// (exact fields need no magnitude-based pivot choice). `None` iff the
/// matrix is singular.
fn solve_square<S: Scalar>(mut mat: Vec<Vec<S>>, mut rhs: Vec<S>) -> Option<Vec<S>> {
    let k = rhs.len();
    for col in 0..k {
        let p = (col..k).find(|&r| !mat[r][col].is_zero())?;
        mat.swap(col, p);
        rhs.swap(col, p);
        let (head, tail) = mat.split_at_mut(col + 1);
        let prow = &head[col];
        let pval = prow[col].clone();
        let prhs = rhs[col].clone();
        for (off, row) in tail.iter_mut().enumerate() {
            if row[col].is_zero() {
                continue;
            }
            let f = row[col].div(&pval);
            for cc in col..k {
                row[cc].sub_mul_in_place(&f, &prow[cc]);
            }
            let r = col + 1 + off;
            rhs[r] = rhs[r].sub(&f.mul(&prhs));
        }
    }
    let mut x = vec![S::zero(); k];
    for col in (0..k).rev() {
        let mut acc = rhs[col].clone();
        for cc in col + 1..k {
            acc = acc.sub(&mat[col][cc].mul(&x[cc]));
        }
        x[col] = acc.div(&mat[col][col]);
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::solve_core;
    use atsched_num::Ratio;

    fn ri(v: i64) -> Ratio {
        Ratio::from_i64(v)
    }

    /// Solve a model in f64, re-derive the basis exactly, and check the
    /// pair against the exact solve and the duality certificate.
    fn roundtrip(mr: &Model<Ratio>, mf: &Model<f64>) {
        let core = solve_core(mf, false).unwrap();
        assert_eq!(core.solution.status, LpStatus::Optimal);
        let fb = core.basis.expect("optimal solve returns a basis");
        let red = rederive(mr, &fb).expect("basis re-derives exactly");
        mr.check_duality(&red.solution, &red.duals).expect("re-derived pair certifies");
        let exact = mr.solve_with_duals().unwrap().0;
        assert_eq!(red.solution.objective, exact.objective);
    }

    #[test]
    fn rederives_mixed_sense_model() {
        let mut mr: Model<Ratio> = Model::new();
        let mut mf: Model<f64> = Model::new();
        let xr = mr.add_var("x", ri(2));
        let yr = mr.add_var("y", ri(3));
        let xf = mf.add_var("x", 2.0);
        let yf = mf.add_var("y", 3.0);
        mr.add_constraint(vec![(xr, ri(1)), (yr, ri(1))], Cmp::Ge, ri(1));
        mf.add_constraint(vec![(xf, 1.0), (yf, 1.0)], Cmp::Ge, 1.0);
        mr.add_constraint(vec![(xr, ri(3)), (yr, ri(-3))], Cmp::Eq, ri(1));
        mf.add_constraint(vec![(xf, 3.0), (yf, -3.0)], Cmp::Eq, 1.0);
        roundtrip(&mr, &mf);
    }

    #[test]
    fn rederives_flipped_and_le_rows() {
        let mut mr: Model<Ratio> = Model::new();
        let mut mf: Model<f64> = Model::new();
        let xr = mr.add_var("x", ri(-1));
        let yr = mr.add_var("y", ri(-1));
        let xf = mf.add_var("x", -1.0);
        let yf = mf.add_var("y", -1.0);
        mr.add_constraint(vec![(xr, ri(1)), (yr, ri(2))], Cmp::Le, ri(4));
        mf.add_constraint(vec![(xf, 1.0), (yf, 2.0)], Cmp::Le, 4.0);
        mr.add_constraint(vec![(xr, ri(-1))], Cmp::Ge, ri(-2)); // x ≤ 2, flipped
        mf.add_constraint(vec![(xf, -1.0)], Cmp::Ge, -2.0);
        roundtrip(&mr, &mf);
    }

    #[test]
    fn rejects_garbage_bases_with_typed_errors() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        let y = m.add_var("y", ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(2))], Cmp::Ge, ri(3));
        m.add_constraint(vec![(x, ri(3)), (y, ri(1))], Cmp::Ge, ri(4));
        // Artificial column (index ≥ n + num_slack = 4) in the basis.
        let fb = FinalBasis { basis: vec![0, 4], row_ids: vec![0, 1], n: 2, num_slack: 2 };
        assert_eq!(rederive(&m, &fb).err(), Some(VerifyError::ArtificialInBasis));
        // Repeated column → singular basis matrix.
        let fb = FinalBasis { basis: vec![0, 0], row_ids: vec![0, 1], n: 2, num_slack: 2 };
        assert_eq!(rederive(&m, &fb).err(), Some(VerifyError::SingularBasis));
        // A basis whose vertex is infeasible for the model: x from row 0
        // only, slack basic in row 1 → x = 3, but then row 1 surplus is
        // 3·3 − 4 = 5 ≥ 0 fine; force infeasibility via both slacks.
        let fb = FinalBasis { basis: vec![2, 3], row_ids: vec![0, 1], n: 2, num_slack: 2 };
        // x = y = 0, surpluses would need to be negative.
        assert_eq!(rederive(&m, &fb).err(), Some(VerifyError::PrimalInfeasible));
    }

    #[test]
    fn error_display_is_stable() {
        assert_eq!(VerifyError::SingularBasis.to_string(), "basis singular in exact arithmetic");
        assert!(VerifyError::NotCertified("gap".into()).to_string().contains("gap"));
    }
}
