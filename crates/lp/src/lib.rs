//! # atsched-lp
//!
//! A from-scratch linear-programming toolkit: a model builder and a dense
//! two-phase primal simplex solver, generic over the scalar field.
//!
//! The nested active-time 9/5-approximation (Cao et al., SPAA 2022) begins
//! by solving the strengthened LP of Figure 1(a). No LP solver exists in
//! the approved dependency set, so this crate provides one, with two
//! instantiations:
//!
//! * [`atsched_num::Ratio`] — exact rational arithmetic. Pivoting uses
//!   Bland's rule, so the method terminates on degenerate programs and the
//!   returned optimum is *bit-for-bit exact*. This is what the reference
//!   rounding pipeline consumes: every comparison the paper's Algorithm 1
//!   makes (`x(i) < L(i)`, `9·x(Des(i)) ≥ 5(x̃+1)`, …) is decided exactly.
//! * `f64` — fast approximate solving for large parameter sweeps. Every
//!   downstream schedule is independently re-verified with integer
//!   max-flow, so floating-point noise cannot produce a silently invalid
//!   schedule.
//!
//! The two meet in the hybrid pipeline ([`Model::solve_hybrid`]): solve
//! in `f64`, keep only the final basis, re-derive that vertex in exact
//! arithmetic, certify it (optimality + uniqueness), and fall back to
//! the exact simplex on any typed failure — exact answers at close to
//! float speed on the common path.
//!
//! ## Example
//!
//! ```
//! use atsched_lp::{Model, Cmp, LpStatus};
//! use atsched_num::Ratio;
//!
//! // min x + y  s.t.  x + 2y >= 3,  3x + y >= 4,  x,y >= 0
//! let mut m: Model<Ratio> = Model::new();
//! let x = m.add_var("x", Ratio::one());
//! let y = m.add_var("y", Ratio::one());
//! m.add_constraint(vec![(x, Ratio::one()), (y, Ratio::from_i64(2))], Cmp::Ge, Ratio::from_i64(3));
//! m.add_constraint(vec![(x, Ratio::from_i64(3)), (y, Ratio::one())], Cmp::Ge, Ratio::from_i64(4));
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert_eq!(sol.objective, Ratio::from_i64(2)); // exact: x = 1, y = 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hybrid;
mod model;
mod presolve;
mod scalar;
mod simplex;
mod verify;
mod warm;

pub use hybrid::{FallbackReason, HybridOutcome};
pub use model::{Cmp, LpError, LpStatus, Model, Solution, SolveInfo, VarId};
pub use scalar::{scalar_from_int, Scalar};
pub use verify::VerifyError;
pub use warm::WarmDecline;
