//! Dense two-phase primal simplex.
//!
//! Pivot selection is Dantzig's rule (most negative reduced cost) for an
//! initial budget of iterations, then falls back to Bland's rule, which
//! guarantees termination on degenerate programs — essential for the exact
//! rational instantiation, where cycling would otherwise loop forever.

use crate::model::{Cmp, Constraint, LpError, LpStatus, Model, Solution, SolveInfo};
use crate::presolve::{inflate, presolve};
use crate::scalar::Scalar;
use atsched_obs as obs;

/// Hard iteration cap (per phase). Protects the `f64` instantiation from
/// tolerance-induced stalls; never reached by the exact path in practice.
const MAX_ITERS: usize = 200_000;

struct Tableau<S> {
    /// `rows × (cols + 1)`; last entry of each row is the RHS.
    rows: Vec<Vec<S>>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Original constraint index of each row (tracks phase-1 removals).
    row_ids: Vec<usize>,
    /// Total structural+slack+artificial columns (excludes RHS).
    cols: usize,
    /// Columns that may never (re-)enter the basis (artificials).
    banned: Vec<bool>,
    /// Set when any pivot decision was made on a value inside the
    /// tolerance band ([`Scalar::sign_is_marginal`] /
    /// [`Scalar::order_is_marginal`]): an exact field might have decided
    /// that pivot differently, so the final basis — while still checked
    /// for exact optimality by the hybrid pipeline — is not guaranteed
    /// to be the one the exact simplex would reach. Never set for exact
    /// fields.
    marginal: bool,
}

impl<S: Scalar> Tableau<S> {
    fn rhs(&self, i: usize) -> &S {
        &self.rows[i][self.cols]
    }

    /// Gauss-pivot on `(row, col)`: row is scaled so the pivot becomes 1,
    /// then eliminated from every other row and from `red` (the reduced
    /// cost row, with its own RHS = -objective).
    ///
    /// The pivot row is moved out of the tableau for the duration of the
    /// elimination sweep (`rows[row]` is briefly an empty `Vec`), so no
    /// full-row clone is ever made; all updates run through the in-place
    /// [`Scalar`] kernels.
    fn pivot(&mut self, row: usize, col: usize, red: &mut [S]) {
        let mut pivot_row = std::mem::take(&mut self.rows[row]);
        let pivot_val = pivot_row[col].clone();
        debug_assert!(!pivot_val.is_zero());
        for v in pivot_row.iter_mut() {
            v.div_in_place(&pivot_val);
        }
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col].clone();
            if factor.is_zero() {
                continue;
            }
            for (dst, src) in r.iter_mut().zip(pivot_row.iter()) {
                dst.sub_mul_in_place(&factor, src);
            }
        }
        let factor = red[col].clone();
        if !factor.is_zero() {
            for (dst, src) in red.iter_mut().zip(pivot_row.iter()) {
                dst.sub_mul_in_place(&factor, src);
            }
        }
        self.rows[row] = pivot_row;
        self.basis[row] = col;
    }

    /// Run the simplex loop to optimality of the current reduced costs.
    /// Returns the status and the number of pivots performed.
    fn optimize(&mut self, red: &mut [S]) -> Result<(LpStatus, usize), LpError> {
        for iter in 0..MAX_ITERS {
            let use_bland = iter > 8 * (self.rows.len() + self.cols);
            let entering = self.choose_entering(red, use_bland);
            let Some(col) = entering else {
                return Ok((LpStatus::Optimal, iter));
            };
            let Some(row) = self.choose_leaving(col) else {
                return Ok((LpStatus::Unbounded, iter));
            };
            self.pivot(row, col, red);
        }
        Err(LpError::IterationLimit)
    }

    fn choose_entering(&mut self, red: &[S], bland: bool) -> Option<usize> {
        if bland {
            for (j, rj) in red.iter().enumerate().take(self.cols) {
                if self.banned[j] {
                    continue;
                }
                if rj.sign_is_marginal() {
                    self.marginal = true;
                }
                if rj.is_negative() {
                    return Some(j);
                }
            }
            None
        } else {
            let mut best: Option<(usize, &S)> = None;
            let mut marginal = self.marginal;
            for (j, rj) in red.iter().enumerate().take(self.cols) {
                if self.banned[j] {
                    continue;
                }
                if rj.sign_is_marginal() {
                    marginal = true;
                }
                if !rj.is_negative() {
                    continue;
                }
                match &best {
                    None => best = Some((j, rj)),
                    Some((_, b)) => {
                        if rj.order_is_marginal(b) {
                            marginal = true;
                        }
                        if rj.decisively_lt(b) {
                            best = Some((j, rj));
                        }
                    }
                }
            }
            self.marginal = marginal;
            best.map(|(j, _)| j)
        }
    }

    /// Minimum-ratio test; ties broken by smallest basic-variable index
    /// (the Bland tie-break, needed for guaranteed termination).
    fn choose_leaving(&mut self, col: usize) -> Option<usize> {
        let mut best: Option<(usize, S)> = None; // (row, ratio)
        let mut marginal = self.marginal;
        for i in 0..self.rows.len() {
            let a = &self.rows[i][col];
            if a.sign_is_marginal() {
                marginal = true;
            }
            if !a.is_positive() {
                continue;
            }
            let ratio = self.rhs(i).div(a);
            match &best {
                None => best = Some((i, ratio)),
                Some((bi, br)) => {
                    if ratio.order_is_marginal(br) {
                        marginal = true;
                    }
                    // Tie-break (Bland): when the new ratio is not
                    // decisively smaller (exact `<`, plus a noise-floor
                    // margin for f64 so cancellation noise cannot steal
                    // an exact tie from the index rule), it ties iff
                    // `ratio - br` is not positive (for f64 this keeps
                    // the tolerance window of the original two-sided
                    // check, since `ratio ≥ br − noise` already holds
                    // here). Check the cheap index comparison first.
                    if ratio.decisively_lt(br)
                        || (self.basis[i] < self.basis[*bi] && !(ratio.sub(br)).is_positive())
                    {
                        best = Some((i, ratio));
                    }
                }
            }
        }
        self.marginal = marginal;
        best.map(|(i, _)| i)
    }
}

/// Reduced costs `c_j - c_Bᵀ·(tableau column j)` and the current objective
/// `c_Bᵀ·rhs`, recomputed from scratch (used at the start of each phase).
fn reduced_costs<S: Scalar>(tab: &Tableau<S>, costs: &[S]) -> (Vec<S>, S) {
    let mut red: Vec<S> = Vec::with_capacity(tab.cols + 1);
    for j in 0..tab.cols {
        let mut z = S::zero();
        for (i, row) in tab.rows.iter().enumerate() {
            let cb = &costs[tab.basis[i]];
            if !cb.is_zero() {
                z = z.add(&cb.mul(&row[j]));
            }
        }
        red.push(costs[j].sub(&z));
    }
    let mut obj = S::zero();
    for (i, _) in tab.rows.iter().enumerate() {
        let cb = &costs[tab.basis[i]];
        if !cb.is_zero() {
            obj = obj.add(&cb.mul(tab.rhs(i)));
        }
    }
    red.push(obj.neg()); // slot aligned with the RHS column
    (red, obj)
}

/// Presolve, solve the reduced model, inflate the solution back.
pub(crate) fn solve_detailed<S: Scalar>(
    model: &Model<S>,
) -> Result<(Solution<S>, SolveInfo), LpError> {
    obs::counter_add("lp.solves", 1);
    let mut info =
        SolveInfo { vars: model.num_vars(), rows: model.num_constraints(), ..SolveInfo::default() };
    let pre = match presolve(model) {
        Err(()) => {
            return Ok((
                Solution {
                    status: LpStatus::Infeasible,
                    objective: S::zero(),
                    values: vec![S::zero(); model.num_vars()],
                },
                info,
            ))
        }
        Ok(p) => p,
    };
    info.presolve_fixed = pre.vars_fixed;
    info.presolve_rows_dropped = pre.rows_dropped;
    obs::counter_add("lp.presolve_fixed", pre.vars_fixed as u64);
    obs::counter_add("lp.presolve_rows_dropped", pre.rows_dropped as u64);

    let core = solve_core(&pre.model, false)?;
    let (reduced_sol, pivots) = (core.solution, core.pivots);
    info.pivots = pivots;
    let solution = match reduced_sol.status {
        LpStatus::Optimal => {
            let values = inflate(&pre.var_disposition, &reduced_sol.values);
            let objective = model.objective_at(&values);
            Solution { status: LpStatus::Optimal, objective, values }
        }
        status => {
            Solution { status, objective: S::zero(), values: vec![S::zero(); model.num_vars()] }
        }
    };
    Ok((solution, info))
}

/// Snapshot of the simplex's final basis, enough to re-derive the same
/// vertex in a different scalar field (the hybrid path re-solves it in
/// exact arithmetic — see [`crate::verify`]).
///
/// Column indices refer to the layout of [`solve_core_inner`]'s tableau:
/// `[0..n)` structural, `[n..n+num_slack)` one slack/surplus per
/// inequality in row order, then artificials.
#[derive(Debug, Clone)]
pub(crate) struct FinalBasis {
    /// Basic column of each surviving row.
    pub basis: Vec<usize>,
    /// Original constraint index of each surviving row (phase 1 may have
    /// dropped redundant rows).
    pub row_ids: Vec<usize>,
    /// Structural column count.
    pub n: usize,
    /// Slack/surplus column count.
    pub num_slack: usize,
}

/// Everything a core solve can report.
pub(crate) struct CoreSolve<S> {
    pub solution: Solution<S>,
    pub pivots: usize,
    /// Dual values (when requested and optimal).
    pub duals: Option<Vec<S>>,
    /// Final basis (when optimal).
    pub basis: Option<FinalBasis>,
    /// Some pivot decision was made inside the tolerance band — the
    /// exact simplex might have pivoted differently (see
    /// [`Tableau::marginal`]). Always `false` for exact fields.
    pub marginal: bool,
}

/// [`solve_core_inner`] plus the `lp.pivots` metric: counting in this
/// wrapper covers both the presolved ([`solve_detailed`]) and the dual
/// ([`solve_with_duals`]) entry points, whichever return path the inner
/// solve takes.
pub(crate) fn solve_core<S: Scalar>(
    model: &Model<S>,
    want_duals: bool,
) -> Result<CoreSolve<S>, LpError> {
    solve_core_with(model, want_duals, true)
}

/// [`solve_core`] with row equilibration optional. The hybrid pipeline
/// turns it off for its float probe: scaling structural rows (the unit
/// slack columns go in *after* the scale) reparameterizes the slack
/// variables, which shifts reduced costs and ratio tests enough to send
/// the float walk down a different — equally optimal — pivot path than
/// the unscaled exact solve. Mirroring the exact walk needs the same
/// LP; a badly scaled model then simply fails certification and falls
/// back, it never returns a wrong answer.
pub(crate) fn solve_core_with<S: Scalar>(
    model: &Model<S>,
    want_duals: bool,
    equilibrate: bool,
) -> Result<CoreSolve<S>, LpError> {
    let out = solve_core_inner(model, want_duals, equilibrate)?;
    obs::counter_add("lp.pivots", out.pivots as u64);
    Ok(out)
}

fn solve_core_inner<S: Scalar>(
    model: &Model<S>,
    want_duals: bool,
    equilibrate: bool,
) -> Result<CoreSolve<S>, LpError> {
    let n = model.num_vars();
    let m = model.constraints.len();
    let mut pivots = 0usize;

    // --- assemble the initial tableau -------------------------------------
    // Column layout: [0..n) structural, then one slack/surplus per
    // inequality, then one artificial per Ge/Eq row (or Le row that needed
    // its sign flipped).
    let mut num_slack = 0usize;
    for c in &model.constraints {
        if matches!(effective_cmp(c), Cmp::Le | Cmp::Ge) {
            num_slack += 1;
        }
    }
    let mut num_art = 0usize;
    for c in &model.constraints {
        if matches!(effective_cmp(c), Cmp::Ge | Cmp::Eq) {
            num_art += 1;
        }
    }
    let cols = n + num_slack + num_art;

    let mut tab = Tableau {
        rows: Vec::with_capacity(m),
        basis: vec![0; m],
        row_ids: (0..m).collect(),
        cols,
        banned: vec![false; cols],
        marginal: false,
    };

    let mut slack_cursor = n;
    let mut art_cursor = n + num_slack;
    let mut art_cols: Vec<usize> = Vec::new();
    // Per original row: (marker column, flipped?, normalized sense) for
    // dual extraction.
    let mut markers: Vec<(usize, bool, Cmp)> = Vec::with_capacity(m);
    for (i, c) in model.constraints.iter().enumerate() {
        let mut row = vec![S::zero(); cols + 1];
        let flip = c.rhs.is_negative();
        // Row equilibration (see [`Scalar::row_scale`]): structural
        // coefficients and RHS are rescaled to unit magnitude *before*
        // the unit slack/artificial entries go in, so the initial basis
        // stays an identity and the feasible set in x-space is
        // unchanged. Skipped when duals are requested — the multipliers
        // of a scaled row would certify the scaled model, not this one —
        // and when the caller needs the unscaled pivot walk (hybrid).
        let scale = if want_duals || !equilibrate { None } else { S::row_scale(&row_max_abs(c)) };
        for (idx, coef) in &c.terms {
            let v = if flip { coef.neg() } else { coef.clone() };
            row[*idx] = match &scale {
                Some(s) => v.mul(s),
                None => v,
            };
        }
        let rhs = if flip { c.rhs.neg() } else { c.rhs.clone() };
        row[cols] = match &scale {
            Some(s) => rhs.mul(s),
            None => rhs,
        };
        match effective_cmp(c) {
            Cmp::Le => {
                row[slack_cursor] = S::one();
                tab.basis[i] = slack_cursor;
                markers.push((slack_cursor, flip, Cmp::Le));
                slack_cursor += 1;
            }
            Cmp::Ge => {
                row[slack_cursor] = S::one().neg();
                markers.push((slack_cursor, flip, Cmp::Ge));
                slack_cursor += 1;
                row[art_cursor] = S::one();
                tab.basis[i] = art_cursor;
                art_cols.push(art_cursor);
                art_cursor += 1;
            }
            Cmp::Eq => {
                row[art_cursor] = S::one();
                tab.basis[i] = art_cursor;
                markers.push((art_cursor, flip, Cmp::Eq));
                art_cols.push(art_cursor);
                art_cursor += 1;
            }
        }
        tab.rows.push(row);
    }

    // --- phase 1: drive artificials to zero -------------------------------
    if !art_cols.is_empty() {
        let mut phase1_costs = vec![S::zero(); cols];
        for &j in &art_cols {
            phase1_costs[j] = S::one();
        }
        let (mut red, _) = reduced_costs(&tab, &phase1_costs);
        match tab.optimize(&mut red)? {
            (LpStatus::Unbounded, _) => {
                unreachable!("phase-1 objective is bounded below by 0")
            }
            (LpStatus::Optimal, p) => pivots += p,
            (LpStatus::Infeasible, _) => unreachable!(),
        }
        // Recompute the phase-1 objective exactly.
        let (_, obj) = reduced_costs(&tab, &phase1_costs);
        if obj.is_positive() {
            return Ok(CoreSolve {
                solution: Solution {
                    status: LpStatus::Infeasible,
                    objective: S::zero(),
                    values: vec![S::zero(); n],
                },
                pivots,
                duals: None,
                basis: None,
                marginal: tab.marginal,
            });
        }
        // Pivot basic artificials (necessarily at value 0) out of the
        // basis, or drop redundant rows.
        let is_art = |j: usize| art_cols.binary_search(&j).is_ok();
        // Scratch reduced-cost row for the pivot-out sweeps below: it is
        // all zeros, so every pivot leaves it all zeros — allocate once.
        let mut scratch = vec![S::zero(); cols + 1];
        let mut row_idx = 0;
        while row_idx < tab.rows.len() {
            if is_art(tab.basis[row_idx]) {
                // The drop-vs-pivot decision below rides on `is_zero`
                // classifications: a marginal entry means an exact field
                // might have kept a row this field drops (or vice
                // versa), i.e. a different surviving-row set.
                let (pivot_col, saw_marginal) = {
                    let row = &tab.rows[row_idx];
                    let mut found = None;
                    let mut saw = false;
                    for (j, rj) in row.iter().enumerate().take(n + num_slack) {
                        if rj.sign_is_marginal() {
                            saw = true;
                        }
                        if !rj.is_zero() {
                            found = Some(j);
                            break;
                        }
                    }
                    (found, saw)
                };
                if saw_marginal {
                    tab.marginal = true;
                }
                match pivot_col {
                    Some(j) => {
                        tab.pivot(row_idx, j, &mut scratch);
                        row_idx += 1;
                    }
                    None => {
                        // Redundant constraint: remove the row entirely.
                        tab.rows.swap_remove(row_idx);
                        tab.basis.swap_remove(row_idx);
                        tab.row_ids.swap_remove(row_idx);
                    }
                }
            } else {
                row_idx += 1;
            }
        }
        for &j in &art_cols {
            tab.banned[j] = true;
        }
    }

    // --- phase 2: optimize the real objective ------------------------------
    let mut phase2_costs = vec![S::zero(); cols];
    phase2_costs[..n].clone_from_slice(&model.objective);
    // Equilibrate the cost vector too (uniformly, so pivot choices are
    // unaffected beyond tolerance classification); the reported
    // objective is recomputed from the unscaled model below.
    if !want_duals && equilibrate {
        let mut mx = S::zero();
        for cst in &phase2_costs[..n] {
            let a = abs_of(cst);
            if mx < a {
                mx = a;
            }
        }
        if let Some(s) = S::row_scale(&mx) {
            for cst in phase2_costs[..n].iter_mut() {
                *cst = cst.mul(&s);
            }
        }
    }
    let (mut red, _) = reduced_costs(&tab, &phase2_costs);
    match tab.optimize(&mut red)? {
        (LpStatus::Unbounded, p) => {
            return Ok(CoreSolve {
                solution: Solution {
                    status: LpStatus::Unbounded,
                    objective: S::zero(),
                    values: vec![S::zero(); n],
                },
                pivots: pivots + p,
                duals: None,
                basis: None,
                marginal: tab.marginal,
            })
        }
        (LpStatus::Optimal, p) => pivots += p,
        (LpStatus::Infeasible, _) => unreachable!(),
    }

    let mut values = vec![S::zero(); n];
    for (i, &b) in tab.basis.iter().enumerate() {
        if b < n {
            values[b] = tab.rhs(i).clone();
        }
    }
    let objective = model.objective_at(&values);

    // Dual extraction: y = c_Bᵀ·B⁻¹ read off the reduced costs of each
    // row's marker column (slack: y = −red; surplus: y = +red;
    // artificial/Eq: y = −red). Rows removed as redundant in phase 1 get
    // dual 0 (they are linear combinations of surviving rows).
    let duals = if want_duals {
        let (red, _) = reduced_costs(&tab, &phase2_costs);
        let surviving: Vec<bool> = {
            let mut v = vec![false; m];
            for &id in &tab.row_ids {
                v[id] = true;
            }
            v
        };
        let mut y = vec![S::zero(); m];
        for (i, &(col, flipped, sense)) in markers.iter().enumerate() {
            if !surviving[i] {
                continue;
            }
            let raw = match sense {
                Cmp::Le => red[col].neg(),
                Cmp::Ge => red[col].clone(),
                Cmp::Eq => red[col].neg(),
            };
            y[i] = if flipped { raw.neg() } else { raw };
        }
        Some(y)
    } else {
        None
    };

    let basis =
        Some(FinalBasis { basis: tab.basis.clone(), row_ids: tab.row_ids.clone(), n, num_slack });
    Ok(CoreSolve {
        solution: Solution { status: LpStatus::Optimal, objective, values },
        pivots,
        duals,
        basis,
        marginal: tab.marginal,
    })
}

/// Solve *without presolve* and return `(primal, duals)`; duals are one
/// multiplier per constraint, valid for the convention
/// `max bᵀy  s.t.  Aᵀy ≤ c,  y_{≥} ≥ 0, y_{≤} ≤ 0, y_{=} free`.
///
/// Exposed for optimality certification (strong duality + complementary
/// slackness); the dual vector is only meaningful when the status is
/// [`LpStatus::Optimal`].
pub(crate) fn solve_with_duals<S: Scalar>(
    model: &Model<S>,
) -> Result<(Solution<S>, Vec<S>), LpError> {
    let core = solve_core(model, true)?;
    let m = model.num_constraints();
    Ok((core.solution, core.duals.unwrap_or_else(|| vec![S::zero(); m])))
}

/// Largest absolute value among a constraint's coefficients and RHS.
fn row_max_abs<S: Scalar>(c: &Constraint<S>) -> S {
    let mut mx = abs_of(&c.rhs);
    for (_, coef) in &c.terms {
        let a = abs_of(coef);
        if mx < a {
            mx = a;
        }
    }
    mx
}

fn abs_of<S: Scalar>(v: &S) -> S {
    if v.is_negative() {
        v.neg()
    } else {
        v.clone()
    }
}

/// The sense of the row *after* RHS sign normalization.
pub(crate) fn effective_cmp<S: Scalar>(c: &Constraint<S>) -> Cmp {
    if c.rhs.is_negative() {
        match c.cmp {
            Cmp::Le => Cmp::Ge,
            Cmp::Ge => Cmp::Le,
            Cmp::Eq => Cmp::Eq,
        }
    } else {
        c.cmp
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, LpStatus, Model};
    use atsched_num::Ratio;
    use proptest::prelude::*;

    fn ri(v: i64) -> Ratio {
        Ratio::from_i64(v)
    }

    fn rf(a: i64, b: i64) -> Ratio {
        Ratio::from_frac(a, b)
    }

    #[test]
    fn trivial_unconstrained_min_is_zero() {
        let mut m: Model<Ratio> = Model::new();
        m.add_var("x", ri(1));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, Ratio::zero());
    }

    #[test]
    fn small_exact_optimum() {
        // min x + y s.t. x + 2y >= 3, 3x + y >= 4
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        let y = m.add_var("y", ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(2))], Cmp::Ge, ri(3));
        m.add_constraint(vec![(x, ri(3)), (y, ri(1))], Cmp::Ge, ri(4));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, ri(2));
        assert_eq!(sol.value(x), &ri(1));
        assert_eq!(sol.value(y), &ri(1));
        assert!(m.is_feasible(&sol.values));
    }

    #[test]
    fn fractional_exact_optimum() {
        // min 2x + 3y s.t. x + y >= 1, x - y = 1/3  → y = ... exact fractions.
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(2));
        let y = m.add_var("y", ri(3));
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Ge, ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(-1))], Cmp::Eq, rf(1, 3));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        // x = 2/3, y = 1/3 → 2·(2/3) + 3·(1/3) = 7/3
        assert_eq!(sol.objective, rf(7, 3));
        assert_eq!(sol.value(x), &rf(2, 3));
        assert_eq!(sol.value(y), &rf(1, 3));
    }

    #[test]
    fn maximization_via_negated_costs() {
        // max x + y s.t. x + 2y <= 4, x <= 2  ⇔ min -(x+y)
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(-1));
        let y = m.add_var("y", ri(-1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(2))], Cmp::Le, ri(4));
        m.add_constraint(vec![(x, ri(1))], Cmp::Le, ri(2));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, ri(-3)); // x = 2, y = 1
    }

    #[test]
    fn infeasible_detected() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        m.add_constraint(vec![(x, ri(1))], Cmp::Le, ri(-1)); // x <= -1 with x >= 0
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);

        let mut m2: Model<Ratio> = Model::new();
        let x = m2.add_var("x", ri(0));
        m2.add_constraint(vec![(x, ri(1))], Cmp::Ge, ri(2));
        m2.add_constraint(vec![(x, ri(1))], Cmp::Le, ri(1));
        assert_eq!(m2.solve().unwrap().status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(-1)); // min -x, x free upward
        m.add_constraint(vec![(x, ri(1))], Cmp::Ge, ri(1));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn redundant_equality_rows_are_dropped() {
        // Two copies of the same equality: phase 1 must drop one.
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        let y = m.add_var("y", ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Eq, ri(2));
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Eq, ri(2));
        m.add_constraint(vec![(x, ri(2)), (y, ri(2))], Cmp::Eq, ri(4));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, ri(2));
    }

    #[test]
    fn beale_degenerate_terminates() {
        // Beale's classic cycling example; Bland's fallback must terminate.
        // min -3/4 x4 + 150 x5 - 1/50 x6 + 6 x7
        // s.t. 1/4 x4 - 60 x5 - 1/25 x6 + 9 x7 <= 0
        //      1/2 x4 - 90 x5 - 1/50 x6 + 3 x7 <= 0
        //      x6 <= 1
        let mut m: Model<Ratio> = Model::new();
        let x4 = m.add_var("x4", rf(-3, 4));
        let x5 = m.add_var("x5", ri(150));
        let x6 = m.add_var("x6", rf(-1, 50));
        let x7 = m.add_var("x7", ri(6));
        m.add_constraint(
            vec![(x4, rf(1, 4)), (x5, ri(-60)), (x6, rf(-1, 25)), (x7, ri(9))],
            Cmp::Le,
            ri(0),
        );
        m.add_constraint(
            vec![(x4, rf(1, 2)), (x5, ri(-90)), (x6, rf(-1, 50)), (x7, ri(3))],
            Cmp::Le,
            ri(0),
        );
        m.add_constraint(vec![(x6, ri(1))], Cmp::Le, ri(1));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, rf(-1, 20));
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // -x <= -2  ⇔  x >= 2
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        m.add_constraint(vec![(x, ri(-1))], Cmp::Le, ri(-2));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, ri(2));
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        // x + x >= 4 → x >= 2
        m.add_constraint(vec![(x, ri(1)), (x, ri(1))], Cmp::Ge, ri(4));
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, ri(2));
    }

    #[test]
    fn f64_matches_rational_on_small_lp() {
        let mut mr: Model<Ratio> = Model::new();
        let mut mf: Model<f64> = Model::new();
        let xr = mr.add_var("x", ri(1));
        let yr = mr.add_var("y", ri(2));
        let xf = mf.add_var("x", 1.0);
        let yf = mf.add_var("y", 2.0);
        mr.add_constraint(vec![(xr, ri(1)), (yr, ri(1))], Cmp::Ge, ri(3));
        mf.add_constraint(vec![(xf, 1.0), (yf, 1.0)], Cmp::Ge, 3.0);
        mr.add_constraint(vec![(xr, ri(1)), (yr, ri(-1))], Cmp::Le, ri(1));
        mf.add_constraint(vec![(xf, 1.0), (yf, -1.0)], Cmp::Le, 1.0);
        let sr = mr.solve().unwrap();
        let sf = mf.solve().unwrap();
        assert_eq!(sr.status, LpStatus::Optimal);
        assert_eq!(sf.status, LpStatus::Optimal);
        assert!((sr.objective.to_f64() - sf.objective).abs() < 1e-9);
    }

    /// Satellite regression: without row equilibration the absolute
    /// `F64_EPS = 1e-9` misclassifies entries of badly scaled models —
    /// at 1e12 scale, f64 cancellation residue (~1e12·2⁻⁵² ≈ 2e-4) reads
    /// as "nonzero" and derails phase 1; at 1e-6 scale, genuinely
    /// meaningful entries drop below the zero threshold after a few
    /// eliminations. The power-of-two row scaling makes both behave
    /// exactly like the unit-scale model.
    #[test]
    fn f64_coefficients_scaled_by_1e12() {
        // min 2x + 3y s.t. s·(x + y) ≥ s, s·(x − y) = s/3 at s = 1e12;
        // s/3 is not representable, so eliminations leave real rounding
        // noise at absolute magnitude ~1e-4.
        let s = 1e12f64;
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", 2.0);
        let y = m.add_var("y", 3.0);
        m.add_constraint(vec![(x, s), (y, s)], Cmp::Ge, s);
        m.add_constraint(vec![(x, s), (y, -s)], Cmp::Eq, s / 3.0);
        // A redundant inexact multiple of the equality: phase 1 must
        // recognize it as dependent and drop it, which needs the
        // tolerance to act relatively.
        m.add_constraint(vec![(x, s / 3.0), (y, -s / 3.0)], Cmp::Eq, s / 9.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        // Exact optimum: x = 2/3, y = 1/3, objective 7/3.
        assert!((sol.objective - 7.0 / 3.0).abs() < 1e-6, "objective {}", sol.objective);
        assert!((sol.values[0] - 2.0 / 3.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn f64_coefficients_scaled_by_1e_minus_6() {
        let s = 1e-6f64;
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", 2.0);
        let y = m.add_var("y", 3.0);
        m.add_constraint(vec![(x, s), (y, s)], Cmp::Ge, s);
        m.add_constraint(vec![(x, s), (y, -s)], Cmp::Eq, s / 3.0);
        m.add_constraint(vec![(x, s / 3.0), (y, -s / 3.0)], Cmp::Eq, s / 9.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 7.0 / 3.0).abs() < 1e-6, "objective {}", sol.objective);
        assert!((sol.values[0] - 2.0 / 3.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn f64_mixed_scale_rows_equilibrate_independently() {
        // One huge row and one tiny row in the same model: each gets its
        // own power-of-two scale.
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", 1.0);
        let y = m.add_var("y", 1.0);
        m.add_constraint(vec![(x, 1e12), (y, 2e12)], Cmp::Ge, 3e12);
        m.add_constraint(vec![(x, 3e-6), (y, 1e-6)], Cmp::Ge, 4e-6);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-6); // x = y = 1
    }

    #[test]
    fn duals_certify_small_lp() {
        // min x + y s.t. x + 2y >= 3, 3x + y >= 4 — both rows tight at
        // the optimum (1,1); duals solve yᵀA = c: y = (2/5, 1/5).
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        let y = m.add_var("y", ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(2))], Cmp::Ge, ri(3));
        m.add_constraint(vec![(x, ri(3)), (y, ri(1))], Cmp::Ge, ri(4));
        let (sol, duals) = m.solve_with_duals().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        m.check_duality(&sol, &duals).unwrap();
        assert_eq!(duals, vec![rf(2, 5), rf(1, 5)]);
    }

    #[test]
    fn duals_with_mixed_senses_and_eq() {
        // min 2x + 3y s.t. x + y >= 1, x - y = 1/3.
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(2));
        let y = m.add_var("y", ri(3));
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Ge, ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(-1))], Cmp::Eq, rf(1, 3));
        let (sol, duals) = m.solve_with_duals().unwrap();
        m.check_duality(&sol, &duals).unwrap();
    }

    #[test]
    fn duals_with_le_rows_and_negative_rhs() {
        // max x + y (as min of negation) with ≤ rows and a flipped row.
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(-1));
        let y = m.add_var("y", ri(-1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(2))], Cmp::Le, ri(4));
        m.add_constraint(vec![(x, ri(-1))], Cmp::Ge, ri(-2)); // x ≤ 2, flipped
        let (sol, duals) = m.solve_with_duals().unwrap();
        assert_eq!(sol.objective, ri(-3));
        m.check_duality(&sol, &duals).unwrap();
    }

    #[test]
    fn duals_with_redundant_rows() {
        // Duplicate equalities: phase 1 drops one; dual 0 for it remains
        // a valid certificate.
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        let y = m.add_var("y", ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Eq, ri(2));
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Eq, ri(2));
        let (sol, duals) = m.solve_with_duals().unwrap();
        m.check_duality(&sol, &duals).unwrap();
    }

    proptest! {
        /// Strong duality bit-for-bit on random feasible exact LPs — a
        /// pivoting-path-independent certificate that the simplex found a
        /// true optimum.
        #[test]
        fn prop_duals_certify_random_lps(
            seed_rows in proptest::collection::vec(
                proptest::collection::vec(-4i64..5, 3), 1..5),
            x0 in proptest::collection::vec(0i64..4, 3),
            costs in proptest::collection::vec(0i64..6, 3),
            senses in proptest::collection::vec(0u8..3, 1..5),
        ) {
            let mut m: Model<Ratio> = Model::new();
            let vars: Vec<_> = (0..3).map(|i| m.add_var(format!("x{i}"), ri(costs[i]))).collect();
            for (row, s) in seed_rows.iter().zip(senses.iter()) {
                let dot: i64 = row.iter().zip(&x0).map(|(a, b)| a * b).sum();
                let terms: Vec<_> = vars.iter().zip(row).map(|(v, c)| (*v, ri(*c))).collect();
                match s {
                    0 => m.add_constraint(terms, Cmp::Ge, ri(dot - 1)),
                    1 => m.add_constraint(terms, Cmp::Le, ri(dot + 1)),
                    _ => m.add_constraint(terms, Cmp::Eq, ri(dot)),
                }
            }
            let (sol, duals) = m.solve_with_duals().unwrap();
            prop_assert_eq!(sol.status, LpStatus::Optimal);
            prop_assert!(m.check_duality(&sol, &duals).is_ok(),
                "{:?}", m.check_duality(&sol, &duals));
        }

        /// Random LPs that are feasible by construction: pick x0 >= 0,
        /// then every constraint is `aᵀx >= aᵀx0 - slack` or
        /// `aᵀx <= aᵀx0 + slack`. The solver must (a) report Optimal,
        /// (b) return a feasible point, (c) not exceed the objective at x0.
        #[test]
        fn prop_feasible_lps_solved(
            seed_rows in proptest::collection::vec(
                proptest::collection::vec(-5i64..6, 3), 1..6),
            x0 in proptest::collection::vec(0i64..5, 3),
            costs in proptest::collection::vec(0i64..7, 3),
            senses in proptest::collection::vec(any::<bool>(), 1..6),
        ) {
            let mut m: Model<Ratio> = Model::new();
            let vars: Vec<_> = (0..3).map(|i| m.add_var(format!("x{i}"), ri(costs[i]))).collect();
            for (row, ge) in seed_rows.iter().zip(senses.iter()) {
                let dot: i64 = row.iter().zip(&x0).map(|(a, b)| a * b).sum();
                let terms: Vec<_> = vars.iter().zip(row).map(|(v, c)| (*v, ri(*c))).collect();
                if *ge {
                    m.add_constraint(terms, Cmp::Ge, ri(dot - 1));
                } else {
                    m.add_constraint(terms, Cmp::Le, ri(dot + 1));
                }
            }
            let sol = m.solve().unwrap();
            prop_assert_eq!(sol.status, LpStatus::Optimal);
            prop_assert!(m.is_feasible(&sol.values));
            let x0_pt: Vec<Ratio> = x0.iter().map(|v| ri(*v)).collect();
            prop_assert!(sol.objective <= m.objective_at(&x0_pt));
        }

        /// The f64 instantiation agrees with the exact one on random
        /// feasible LPs (within tolerance).
        #[test]
        fn prop_f64_agrees_with_exact(
            seed_rows in proptest::collection::vec(
                proptest::collection::vec(-4i64..5, 2), 1..5),
            x0 in proptest::collection::vec(0i64..4, 2),
            costs in proptest::collection::vec(1i64..5, 2),
        ) {
            let mut mr: Model<Ratio> = Model::new();
            let mut mf: Model<f64> = Model::new();
            let vr: Vec<_> = (0..2).map(|i| mr.add_var(format!("x{i}"), ri(costs[i]))).collect();
            let vf: Vec<_> = (0..2).map(|i| mf.add_var(format!("x{i}"), costs[i] as f64)).collect();
            for row in &seed_rows {
                let dot: i64 = row.iter().zip(&x0).map(|(a, b)| a * b).sum();
                mr.add_constraint(vr.iter().zip(row).map(|(v, c)| (*v, ri(*c))).collect(), Cmp::Ge, ri(dot));
                mf.add_constraint(vf.iter().zip(row).map(|(v, c)| (*v, *c as f64)).collect(), Cmp::Ge, dot as f64);
            }
            let sr = mr.solve().unwrap();
            let sf = mf.solve().unwrap();
            prop_assert_eq!(sr.status, LpStatus::Optimal);
            prop_assert_eq!(sf.status, LpStatus::Optimal);
            prop_assert!((sr.objective.to_f64() - sf.objective).abs() < 1e-6);
        }
    }
}
