//! LP presolve: cheap, exactness-preserving reductions applied before the
//! simplex method.
//!
//! The nested-scheduling LPs are full of structure a presolver eats for
//! breakfast: virtual tree nodes contribute `x ≤ 0` rows (fix the
//! variable, drop the column), equal windows produce duplicate rows, and
//! substituted fixed variables empty out further rows. Reductions:
//!
//! 1. single-term constraints become variable bounds; an upper bound of 0
//!    (or an equality pin) *fixes* the variable, removing its column;
//! 2. rows that become empty after substitution are checked for
//!    consistency and dropped (inconsistent ⇒ infeasible);
//! 3. duplicate rows are deduplicated.
//!
//! Everything is generic over the [`Scalar`], so the exact path stays
//! exact.

use crate::model::{Cmp, Constraint, Model};
use crate::scalar::Scalar;

/// Outcome of presolving.
pub(crate) struct Presolved<S> {
    /// The reduced model.
    pub model: Model<S>,
    /// For each original variable: `Ok(new_index)` or `Err(fixed_value)`.
    pub var_disposition: Vec<Result<usize, S>>,
    /// Rows removed (empty or duplicate).
    pub rows_dropped: usize,
    /// Variables eliminated.
    pub vars_fixed: usize,
}

/// `Err(())` means presolve proved the model infeasible.
pub(crate) fn presolve<S: Scalar>(model: &Model<S>) -> Result<Presolved<S>, ()> {
    let n = model.num_vars();

    // Pass 1: derive fixings from single-term rows.
    let mut fixed: Vec<Option<S>> = vec![None; n];
    for c in &model.constraints {
        if c.terms.len() != 1 {
            continue;
        }
        let (v, a) = (c.terms[0].0, &c.terms[0].1);
        debug_assert!(!a.is_zero());
        let bound = c.rhs.div(a);
        let effective = if a.is_negative() {
            // a·x ≤ b ⇔ x ≥ b/a, etc. — flip the sense.
            match c.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            }
        } else {
            c.cmp
        };
        match effective {
            Cmp::Le => {
                // x ≤ bound with x ≥ 0: bound < 0 infeasible; = 0 fixes.
                if bound.is_negative() {
                    return Err(());
                }
                if bound.is_zero() {
                    match &fixed[v] {
                        Some(prev) if !prev.is_zero() => return Err(()),
                        _ => fixed[v] = Some(S::zero()),
                    }
                }
            }
            Cmp::Eq => {
                if bound.is_negative() {
                    return Err(());
                }
                match &fixed[v] {
                    Some(prev) if !prev.sub(&bound).is_zero() => return Err(()),
                    _ => fixed[v] = Some(bound),
                }
            }
            Cmp::Ge => {
                // Only useful for infeasibility together with an x ≤ 0 or
                // pin; checked in pass 2 when the row survives.
            }
        }
    }

    // Pass 2: rebuild the model with fixed variables substituted out.
    let mut var_disposition: Vec<Result<usize, S>> = Vec::with_capacity(n);
    let mut reduced: Model<S> = Model::new();
    for (v, fx) in fixed.iter().enumerate() {
        match fx {
            Some(val) => var_disposition.push(Err(val.clone())),
            None => {
                let id = reduced.add_var(model.names[v].clone(), model.objective[v].clone());
                var_disposition.push(Ok(id.index()));
            }
        }
    }

    // (terms, cmp, rhs) rendered to strings for duplicate-row detection.
    type RowKey = (Vec<(usize, String)>, Cmp, String);
    let mut rows_dropped = 0usize;
    let mut seen_rows: std::collections::HashSet<RowKey> = std::collections::HashSet::new();
    for c in &model.constraints {
        let mut new_terms: Vec<(crate::model::VarId, S)> = Vec::new();
        let mut rhs = c.rhs.clone();
        for (v, coef) in &c.terms {
            match &var_disposition[*v] {
                Ok(idx) => new_terms.push((crate::model::VarId(*idx), coef.clone())),
                Err(val) => rhs = rhs.sub(&coef.mul(val)),
            }
        }
        if new_terms.is_empty() {
            // 0 cmp rhs.
            let ok = match c.cmp {
                Cmp::Le => !rhs.is_negative(),
                Cmp::Ge => !rhs.is_positive(),
                Cmp::Eq => rhs.is_zero(),
            };
            if !ok {
                return Err(());
            }
            rows_dropped += 1;
            continue;
        }
        // Dedup on a canonical scale-normalized rendering: every row is
        // divided through by the absolute value of its lowest-index
        // coefficient, so scalar multiples (2x + 2y ≥ 4 vs x + y ≥ 2)
        // collapse to one key. The divisor is positive, preserving the
        // sense. Exact for Ratio; for f64 the sub-tolerance rounding of
        // the division only merges rows that are equal well below the
        // solver's 1e-9 tolerance, which is sound.
        let mut sorted: Vec<(usize, &S)> =
            new_terms.iter().map(|(v, coef)| (v.index(), coef)).collect();
        sorted.sort_by_key(|(v, _)| *v);
        let lead = sorted[0].1;
        let scale = if lead.is_negative() { lead.neg() } else { lead.clone() };
        let key_terms: Vec<(usize, String)> =
            sorted.iter().map(|(v, coef)| (*v, format!("{}", coef.div(&scale)))).collect();
        let key = (key_terms, c.cmp, format!("{}", rhs.div(&scale)));
        if !seen_rows.insert(key) {
            rows_dropped += 1;
            continue;
        }
        reduced.add_constraint(new_terms, c.cmp, rhs);
    }

    let vars_fixed = var_disposition.iter().filter(|d| d.is_err()).count();
    Ok(Presolved { model: reduced, var_disposition, rows_dropped, vars_fixed })
}

/// Expand a reduced-space solution back to original variable order.
pub(crate) fn inflate<S: Scalar>(disposition: &[Result<usize, S>], reduced_values: &[S]) -> Vec<S> {
    disposition
        .iter()
        .map(|d| match d {
            Ok(idx) => reduced_values[*idx].clone(),
            Err(val) => val.clone(),
        })
        .collect()
}

/// Used by tests: count constraints that are pure single-term bounds.
#[allow(dead_code)]
pub(crate) fn count_bound_rows<S: Scalar>(model: &Model<S>) -> usize {
    model.constraints.iter().filter(|c: &&Constraint<S>| c.terms.len() == 1).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LpStatus, Model};
    use atsched_num::Ratio;

    fn ri(v: i64) -> Ratio {
        Ratio::from_i64(v)
    }

    #[test]
    fn fixes_zero_upper_bound_vars() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        let y = m.add_var("y", ri(1));
        m.add_constraint(vec![(x, ri(1))], Cmp::Le, ri(0)); // x ≤ 0 → fix
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Ge, ri(3));
        let p = presolve(&m).unwrap();
        assert_eq!(p.vars_fixed, 1);
        assert_eq!(p.model.num_vars(), 1);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, ri(3));
        assert_eq!(sol.value(x), &Ratio::zero());
        assert_eq!(sol.value(y), &ri(3));
    }

    #[test]
    fn equality_pin_substitutes_value() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(2));
        let y = m.add_var("y", ri(1));
        m.add_constraint(vec![(x, ri(2))], Cmp::Eq, ri(4)); // x = 2
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Ge, ri(5));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.value(x), &ri(2));
        assert_eq!(sol.value(y), &ri(3));
        assert_eq!(sol.objective, ri(7));
    }

    #[test]
    fn detects_trivial_infeasibility() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        m.add_constraint(vec![(x, ri(1))], Cmp::Le, ri(0));
        m.add_constraint(vec![(x, ri(1))], Cmp::Ge, ri(1)); // 0 ≥ 1 after subst
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn conflicting_pins_infeasible() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(0));
        m.add_constraint(vec![(x, ri(1))], Cmp::Eq, ri(1));
        m.add_constraint(vec![(x, ri(1))], Cmp::Eq, ri(2));
        assert_eq!(m.solve().unwrap().status, LpStatus::Infeasible);
    }

    #[test]
    fn negative_upper_bound_infeasible() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(0));
        m.add_constraint(vec![(x, ri(1))], Cmp::Le, ri(-1));
        assert_eq!(m.solve().unwrap().status, LpStatus::Infeasible);
    }

    #[test]
    fn duplicate_rows_dropped() {
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        let y = m.add_var("y", ri(1));
        for _ in 0..3 {
            m.add_constraint(vec![(x, ri(1)), (y, ri(2))], Cmp::Ge, ri(4));
        }
        let p = presolve(&m).unwrap();
        assert_eq!(p.rows_dropped, 2);
        assert_eq!(m.solve().unwrap().objective, ri(2));
    }

    #[test]
    fn scaled_duplicate_rows_dropped() {
        // 2x + 2y ≥ 4 and 3x + 3y ≥ 6 are scalar multiples of x + y ≥ 2;
        // the scale-normalized key must collapse all three.
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(1));
        let y = m.add_var("y", ri(1));
        m.add_constraint(vec![(x, ri(1)), (y, ri(1))], Cmp::Ge, ri(2));
        m.add_constraint(vec![(x, ri(2)), (y, ri(2))], Cmp::Ge, ri(4));
        m.add_constraint(vec![(x, ri(3)), (y, ri(3))], Cmp::Ge, ri(6));
        // Negated-leading-coefficient multiple of the same row: the
        // divisor is |lead|, so the sense stays distinct and it is kept.
        m.add_constraint(vec![(x, ri(-1)), (y, ri(-1))], Cmp::Le, ri(-2));
        let p = presolve(&m).unwrap();
        assert_eq!(p.rows_dropped, 2);
        assert_eq!(m.solve().unwrap().objective, ri(2));
    }

    #[test]
    fn inflate_roundtrip() {
        let disposition: Vec<Result<usize, Ratio>> = vec![Ok(0), Err(ri(7)), Ok(1)];
        let out = inflate(&disposition, &[ri(1), ri(2)]);
        assert_eq!(out, vec![ri(1), ri(7), ri(2)]);
    }

    #[test]
    fn negative_coefficient_bound() {
        // -2x ≥ -6  ⇔  x ≤ 3 (not fixing); -2x ≥ 0 ⇔ x ≤ 0 (fixing).
        let mut m: Model<Ratio> = Model::new();
        let x = m.add_var("x", ri(-1)); // maximize x
        m.add_constraint(vec![(x, ri(-2))], Cmp::Ge, ri(-6));
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, ri(-3));

        let mut m2: Model<Ratio> = Model::new();
        let x2 = m2.add_var("x", ri(-1));
        m2.add_constraint(vec![(x2, ri(-2))], Cmp::Ge, ri(0));
        let p = presolve(&m2).unwrap();
        assert_eq!(p.vars_fixed, 1);
        assert_eq!(m2.solve().unwrap().objective, Ratio::zero());
    }
}
