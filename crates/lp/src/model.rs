//! LP model builder: named non-negative variables, a minimization
//! objective, and `≤ / ≥ / =` linear constraints.

use crate::scalar::Scalar;
use crate::simplex;
use std::fmt;

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in [`Solution::values`].
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Terminal status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraint set is empty.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Errors surfaced by [`Model::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The iteration limit was exceeded (should not happen with Bland's
    /// rule on exact arithmetic; it protects the `f64` instantiation).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// Instrumentation from a solve (sizes, presolve effect, pivot counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveInfo {
    /// Variables in the original model.
    pub vars: usize,
    /// Constraints in the original model.
    pub rows: usize,
    /// Variables eliminated by presolve.
    pub presolve_fixed: usize,
    /// Rows removed by presolve (empty after substitution, or duplicate).
    pub presolve_rows_dropped: usize,
    /// Simplex pivots across both phases.
    pub pivots: usize,
}

/// Result of a successful solve.
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// Terminal status. `values`/`objective` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Objective value at the optimum.
    pub objective: S,
    /// One value per variable, indexed by [`VarId::index`].
    pub values: Vec<S>,
}

impl<S: Scalar> Solution<S> {
    /// Value of a single variable.
    pub fn value(&self, v: VarId) -> &S {
        &self.values[v.0]
    }
}

/// A linear program `min cᵀx  s.t.  Ax {≤,≥,=} b,  x ≥ 0`.
#[derive(Debug, Clone)]
pub struct Model<S> {
    pub(crate) names: Vec<String>,
    pub(crate) objective: Vec<S>,
    pub(crate) constraints: Vec<Constraint<S>>,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint<S> {
    pub(crate) terms: Vec<(usize, S)>,
    pub(crate) cmp: Cmp,
    pub(crate) rhs: S,
}

impl<S: Scalar> Default for Model<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> Model<S> {
    /// An empty model.
    pub fn new() -> Self {
        Model { names: Vec::new(), objective: Vec::new(), constraints: Vec::new() }
    }

    /// Add a non-negative variable with the given objective coefficient
    /// (the objective is *minimized*).
    pub fn add_var(&mut self, name: impl Into<String>, obj_coef: S) -> VarId {
        self.names.push(name.into());
        self.objective.push(obj_coef);
        VarId(self.names.len() - 1)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// Add the constraint `Σ coefᵢ·varᵢ  cmp  rhs`.
    ///
    /// Duplicate variables in `terms` are summed. Empty constraints are
    /// allowed (they become trivially true or falsify the model).
    pub fn add_constraint(&mut self, terms: Vec<(VarId, S)>, cmp: Cmp, rhs: S) {
        let mut dense: Vec<(usize, S)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            debug_assert!(v.0 < self.names.len(), "variable from another model");
            if let Some(slot) = dense.iter_mut().find(|(idx, _)| *idx == v.0) {
                slot.1 = slot.1.add(&c);
            } else {
                dense.push((v.0, c));
            }
        }
        dense.retain(|(_, c)| !c.is_zero());
        self.constraints.push(Constraint { terms: dense, cmp, rhs });
    }

    /// Evaluate `Σ terms` of a constraint at a candidate point.
    pub(crate) fn eval_constraint(&self, c: &Constraint<S>, point: &[S]) -> S {
        let mut acc = S::zero();
        for (idx, coef) in &c.terms {
            acc = acc.add(&coef.mul(&point[*idx]));
        }
        acc
    }

    /// Check a candidate point against all constraints and variable
    /// bounds; used in tests and the verification harness.
    pub fn is_feasible(&self, point: &[S]) -> bool {
        if point.len() != self.names.len() {
            return false;
        }
        if point.iter().any(|v| v.is_negative()) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs = self.eval_constraint(c, point);
            match c.cmp {
                Cmp::Le => !lhs.sub(&c.rhs).is_positive(),
                Cmp::Ge => !c.rhs.sub(&lhs).is_positive(),
                Cmp::Eq => lhs.sub(&c.rhs).is_zero(),
            }
        })
    }

    /// Objective value at a candidate point.
    pub fn objective_at(&self, point: &[S]) -> S {
        let mut acc = S::zero();
        for (c, v) in self.objective.iter().zip(point) {
            acc = acc.add(&c.mul(v));
        }
        acc
    }

    /// Solve with presolve + the two-phase primal simplex method.
    pub fn solve(&self) -> Result<Solution<S>, LpError> {
        self.solve_detailed().map(|(s, _)| s)
    }

    /// Like [`Model::solve`], also returning instrumentation.
    pub fn solve_detailed(&self) -> Result<(Solution<S>, SolveInfo), LpError> {
        simplex::solve_detailed(self)
    }

    /// Solve (without presolve) and return the primal together with a
    /// dual multiplier per constraint, under the convention
    /// `max bᵀy s.t. Aᵀy ≤ c, y_{≥} ≥ 0, y_{≤} ≤ 0, y_{=} free`.
    ///
    /// With exact scalars, strong duality (`cᵀx* = bᵀy*`) holds
    /// bit-for-bit at optimality — [`Model::check_duality`] verifies it —
    /// which certifies the returned primal optimum independently of the
    /// pivoting path.
    pub fn solve_with_duals(&self) -> Result<(Solution<S>, Vec<S>), LpError> {
        simplex::solve_with_duals(self)
    }

    /// Verify an (x, y) pair as optimality certificate: primal
    /// feasibility, dual feasibility (`Aᵀy ≤ c` + sign conditions), and
    /// strong duality `cᵀx = bᵀy`. Returns a description of the first
    /// violation.
    pub fn check_duality(&self, solution: &Solution<S>, duals: &[S]) -> Result<(), String> {
        if solution.status != LpStatus::Optimal {
            return Err("not an optimal solution".into());
        }
        if duals.len() != self.constraints.len() {
            return Err("dual vector arity mismatch".into());
        }
        if !self.is_feasible(&solution.values) {
            return Err("primal infeasible".into());
        }
        // Sign conditions.
        for (i, (c, y)) in self.constraints.iter().zip(duals).enumerate() {
            match c.cmp {
                Cmp::Ge => {
                    if y.is_negative() {
                        return Err(format!("dual {i} negative on a ≥ row"));
                    }
                }
                Cmp::Le => {
                    if y.is_positive() {
                        return Err(format!("dual {i} positive on a ≤ row"));
                    }
                }
                Cmp::Eq => {}
            }
        }
        // Dual feasibility: for every variable v, Σ_i a_{iv}·y_i ≤ c_v.
        for v in 0..self.num_vars() {
            let mut lhs = S::zero();
            for (c, y) in self.constraints.iter().zip(duals) {
                if let Some((_, coef)) = c.terms.iter().find(|(idx, _)| *idx == v) {
                    lhs = lhs.add(&coef.mul(y));
                }
            }
            if lhs.sub(&self.objective[v]).is_positive() {
                return Err(format!("dual infeasible at variable {v}"));
            }
        }
        // Strong duality.
        let mut dual_obj = S::zero();
        for (c, y) in self.constraints.iter().zip(duals) {
            dual_obj = dual_obj.add(&c.rhs.mul(y));
        }
        if !dual_obj.sub(&solution.objective).is_zero() {
            return Err(format!("duality gap: primal {} vs dual {}", solution.objective, dual_obj));
        }
        Ok(())
    }
}

impl<S: Scalar> fmt::Display for Model<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "min ")?;
        let mut first = true;
        for (i, c) in self.objective.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}·{}", c, self.names[i])?;
            first = false;
        }
        writeln!(f)?;
        for c in &self.constraints {
            write!(f, "  ")?;
            let mut first = true;
            for (idx, coef) in &c.terms {
                if !first {
                    write!(f, " + ")?;
                }
                write!(f, "{}·{}", coef, self.names[*idx])?;
                first = false;
            }
            let op = match c.cmp {
                Cmp::Le => "<=",
                Cmp::Ge => ">=",
                Cmp::Eq => "=",
            };
            writeln!(f, " {} {}", op, c.rhs)?;
        }
        Ok(())
    }
}
