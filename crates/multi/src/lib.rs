//! # atsched-multi
//!
//! The *multiple-interval* generalization of active-time scheduling,
//! from the paper's related-work section: each job may be scheduled in a
//! **collection of intervals** instead of a single window. Chang, Gabow
//! and Khuller show this is NP-hard already for `g ≥ 3` with unit jobs
//! (polynomial for `g = 2`), but admits an `H_g`-approximation via
//! Wolsey's submodular set-cover framework.
//!
//! This crate implements:
//!
//! * the problem model ([`MultiInstance`]) and max-flow feasibility;
//! * the `H_g`-approximation ([`greedy_cover`]): the schedulable-volume
//!   function `f(S) = maxflow(S)` is monotone submodular, a slot's
//!   marginal value is an integer ≤ `g`, and a feasible slot set is
//!   exactly a set with `f(S) = Σ p_j` — so Wolsey's greedy (repeatedly
//!   open the slot with the largest marginal volume) is an
//!   `H_g = 1 + 1/2 + … + 1/g` approximation;
//! * brute-force ground truth for tests and the E14 experiment.
//!
//! ## Example
//!
//! ```
//! use atsched_multi::{greedy_cover, MultiInstance, MultiJob};
//!
//! // A job that may run in [0,2) ∪ [6,8), plus one pinned to [6,7).
//! let inst = MultiInstance::new(2, vec![
//!     MultiJob::new(vec![(0, 2), (6, 8)], 2).unwrap(),
//!     MultiJob::new(vec![(6, 7)], 1).unwrap(),
//! ]).unwrap();
//! let sched = greedy_cover(&inst).expect("feasible");
//! assert!(inst.verify(&sched.slots, &sched.assignment).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atsched_flow::FlowNetwork;

/// A job restricted to a collection of disjoint intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiJob {
    /// Sorted, pairwise-disjoint half-open intervals `[lo, hi)`.
    pub intervals: Vec<(i64, i64)>,
    /// Number of distinct slots the job needs.
    pub processing: i64,
}

impl MultiJob {
    /// Validate and construct (intervals are sorted automatically).
    pub fn new(mut intervals: Vec<(i64, i64)>, processing: i64) -> Result<Self, String> {
        intervals.sort_unstable();
        if processing < 1 {
            return Err("processing time must be ≥ 1".into());
        }
        if intervals.is_empty() {
            return Err("job needs at least one interval".into());
        }
        for w in &intervals {
            if w.0 >= w.1 {
                return Err(format!("empty interval [{}, {})", w.0, w.1));
            }
        }
        for w in intervals.windows(2) {
            if w[0].1 > w[1].0 {
                return Err("intervals overlap".into());
            }
        }
        let total: i64 = intervals.iter().map(|(a, b)| b - a).sum();
        if total < processing {
            return Err("intervals shorter than processing time".into());
        }
        Ok(MultiJob { intervals, processing })
    }

    /// Is slot `t` allowed for this job?
    pub fn allows(&self, t: i64) -> bool {
        self.intervals.iter().any(|&(a, b)| a <= t && t < b)
    }
}

/// A multiple-interval active-time instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiInstance {
    /// Machine parallelism per active slot.
    pub g: i64,
    /// The jobs.
    pub jobs: Vec<MultiJob>,
}

/// A schedule for a [`MultiInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiSchedule {
    /// Open slots, sorted.
    pub slots: Vec<i64>,
    /// Job ids per open slot.
    pub assignment: Vec<Vec<usize>>,
}

impl MultiSchedule {
    /// Number of slots actually running work.
    pub fn active_time(&self) -> usize {
        self.assignment.iter().filter(|a| !a.is_empty()).count()
    }
}

impl MultiInstance {
    /// Validate and construct.
    pub fn new(g: i64, jobs: Vec<MultiJob>) -> Result<Self, String> {
        if g < 1 {
            return Err("g must be ≥ 1".into());
        }
        Ok(MultiInstance { g, jobs })
    }

    /// Total processing volume.
    pub fn total_volume(&self) -> i64 {
        self.jobs.iter().map(|j| j.processing).sum()
    }

    /// Slots allowed for at least one job, sorted and distinct.
    pub fn candidate_slots(&self) -> Vec<i64> {
        let mut out: Vec<i64> =
            self.jobs.iter().flat_map(|j| j.intervals.iter().flat_map(|&(a, b)| a..b)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Maximum schedulable volume with exactly the given slots open
    /// (the submodular function `f` of Wolsey's framework).
    pub fn max_volume(&self, slots: &[i64]) -> i64 {
        let n = self.jobs.len();
        let mut net = FlowNetwork::new(2 + n + slots.len());
        for (j, job) in self.jobs.iter().enumerate() {
            net.add_edge(0, 2 + j, job.processing);
            for (k, &t) in slots.iter().enumerate() {
                if job.allows(t) {
                    net.add_edge(2 + j, 2 + n + k, 1);
                }
            }
        }
        for k in 0..slots.len() {
            net.add_edge(2 + n + k, 1, self.g);
        }
        net.max_flow(0, 1)
    }

    /// Can all jobs be fully scheduled with the given open slots?
    pub fn slots_feasible(&self, slots: &[i64]) -> bool {
        self.max_volume(slots) == self.total_volume()
    }

    /// Extract a full assignment on the given slots, if feasible.
    pub fn extract(&self, slots: &[i64]) -> Option<MultiSchedule> {
        let n = self.jobs.len();
        let mut net = FlowNetwork::new(2 + n + slots.len());
        let mut edges = Vec::new();
        for (j, job) in self.jobs.iter().enumerate() {
            net.add_edge(0, 2 + j, job.processing);
            for (k, &t) in slots.iter().enumerate() {
                if job.allows(t) {
                    edges.push((j, k, net.add_edge(2 + j, 2 + n + k, 1)));
                }
            }
        }
        for k in 0..slots.len() {
            net.add_edge(2 + n + k, 1, self.g);
        }
        if net.max_flow(0, 1) != self.total_volume() {
            return None;
        }
        let mut assignment = vec![Vec::new(); slots.len()];
        for (j, k, e) in edges {
            if net.flow_on(e) > 0 {
                assignment[k].push(j);
            }
        }
        Some(MultiSchedule { slots: slots.to_vec(), assignment })
    }

    /// Independent schedule validation.
    pub fn verify(&self, slots: &[i64], assignment: &[Vec<usize>]) -> Result<(), String> {
        if slots.len() != assignment.len() {
            return Err("arity mismatch".into());
        }
        if !slots.windows(2).all(|w| w[0] < w[1]) {
            return Err("slots unsorted".into());
        }
        let mut volume = vec![0i64; self.jobs.len()];
        for (t, jobs) in slots.iter().zip(assignment) {
            if jobs.len() as i64 > self.g {
                return Err(format!("slot {t} over capacity"));
            }
            let mut seen = jobs.clone();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!("duplicate job in slot {t}"));
            }
            for &j in jobs {
                if !self.jobs[j].allows(*t) {
                    return Err(format!("job {j} outside its intervals at {t}"));
                }
                volume[j] += 1;
            }
        }
        for (j, (got, job)) in volume.iter().zip(&self.jobs).enumerate() {
            if *got != job.processing {
                return Err(format!("job {j} volume {got} ≠ {}", job.processing));
            }
        }
        Ok(())
    }
}

/// `H_g = 1 + 1/2 + … + 1/g` — the greedy's approximation guarantee.
pub fn harmonic(g: i64) -> f64 {
    (1..=g).map(|k| 1.0 / k as f64).sum()
}

/// Wolsey's submodular-cover greedy: repeatedly open the candidate slot
/// with the largest marginal schedulable volume until everything fits.
/// Returns `None` when even all slots cannot schedule the jobs.
pub fn greedy_cover(inst: &MultiInstance) -> Option<MultiSchedule> {
    let volume = inst.total_volume();
    let cand = inst.candidate_slots();
    if inst.max_volume(&cand) < volume {
        return None;
    }
    let mut open: Vec<i64> = Vec::new();
    let mut current = 0i64;
    let mut remaining: Vec<i64> = cand;
    while current < volume {
        let mut best: Option<(usize, i64)> = None; // (index into remaining, f value)
        for (idx, &t) in remaining.iter().enumerate() {
            let pos = open.partition_point(|&x| x < t);
            let mut trial = open.clone();
            trial.insert(pos, t);
            let f = inst.max_volume(&trial);
            if best.is_none_or(|(_, bf)| f > bf) {
                best = Some((idx, f));
            }
        }
        let (idx, f) = best.expect("candidates cannot run out before coverage");
        debug_assert!(f > current, "marginal gain must be positive before coverage");
        let t = remaining.remove(idx);
        let pos = open.partition_point(|&x| x < t);
        open.insert(pos, t);
        current = f;
    }
    inst.extract(&open)
}

/// Exact optimum by slot-subset enumeration (tests/experiments only).
///
/// # Panics
/// Panics when there are more than `max_candidates` candidate slots.
pub fn brute_force_opt(inst: &MultiInstance, max_candidates: usize) -> Option<MultiSchedule> {
    let cand = inst.candidate_slots();
    assert!(cand.len() <= max_candidates, "brute force refused: {} slots", cand.len());
    if !inst.slots_feasible(&cand) {
        return None;
    }
    for k in 0..=cand.len() {
        if let Some(s) = subsets_of_size(inst, &cand, k) {
            return Some(s);
        }
    }
    unreachable!("full candidate set is feasible");
}

fn subsets_of_size(inst: &MultiInstance, cand: &[i64], k: usize) -> Option<MultiSchedule> {
    fn rec(
        inst: &MultiInstance,
        cand: &[i64],
        k: usize,
        start: usize,
        pick: &mut Vec<i64>,
    ) -> Option<MultiSchedule> {
        if pick.len() == k {
            return inst.extract(pick);
        }
        if cand.len() - start < k - pick.len() {
            return None;
        }
        for i in start..cand.len() {
            pick.push(cand[i]);
            if let Some(s) = rec(inst, cand, k, i + 1, pick) {
                return Some(s);
            }
            pick.pop();
        }
        None
    }
    rec(inst, cand, k, 0, &mut Vec::with_capacity(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn job_validation() {
        assert!(MultiJob::new(vec![], 1).is_err());
        assert!(MultiJob::new(vec![(0, 0)], 1).is_err());
        assert!(MultiJob::new(vec![(0, 2), (1, 3)], 1).is_err()); // overlap
        assert!(MultiJob::new(vec![(0, 1)], 2).is_err()); // too short
        assert!(MultiJob::new(vec![(4, 6), (0, 2)], 3).is_ok()); // sorts
        assert!(MultiJob::new(vec![(0, 2)], 0).is_err());
    }

    #[test]
    fn allows_checks_all_intervals() {
        let j = MultiJob::new(vec![(0, 2), (5, 7)], 2).unwrap();
        assert!(j.allows(0));
        assert!(j.allows(6));
        assert!(!j.allows(2));
        assert!(!j.allows(4));
    }

    #[test]
    fn greedy_solves_single_window_like_cases() {
        // Equivalent to the classic single-window case.
        let inst = MultiInstance::new(
            2,
            vec![MultiJob::new(vec![(0, 4)], 2).unwrap(), MultiJob::new(vec![(1, 3)], 1).unwrap()],
        )
        .unwrap();
        let s = greedy_cover(&inst).unwrap();
        inst.verify(&s.slots, &s.assignment).unwrap();
        assert_eq!(s.active_time(), 2);
    }

    #[test]
    fn split_intervals_force_spread() {
        // A job that can only run in two separated unit intervals.
        let inst =
            MultiInstance::new(1, vec![MultiJob::new(vec![(0, 1), (5, 6)], 2).unwrap()]).unwrap();
        let s = greedy_cover(&inst).unwrap();
        inst.verify(&s.slots, &s.assignment).unwrap();
        assert_eq!(s.slots, vec![0, 5]);
    }

    #[test]
    fn shared_slot_batching() {
        // g jobs with interval collections that all contain slot 3.
        let inst = MultiInstance::new(
            3,
            vec![
                MultiJob::new(vec![(0, 1), (3, 4)], 1).unwrap(),
                MultiJob::new(vec![(3, 5)], 1).unwrap(),
                MultiJob::new(vec![(2, 4), (8, 9)], 1).unwrap(),
            ],
        )
        .unwrap();
        let s = greedy_cover(&inst).unwrap();
        inst.verify(&s.slots, &s.assignment).unwrap();
        assert_eq!(s.active_time(), 1);
    }

    #[test]
    fn infeasible_detected() {
        let inst = MultiInstance::new(
            1,
            vec![MultiJob::new(vec![(0, 1)], 1).unwrap(), MultiJob::new(vec![(0, 1)], 1).unwrap()],
        )
        .unwrap();
        assert!(greedy_cover(&inst).is_none());
        assert!(brute_force_opt(&inst, 10).is_none());
    }

    #[test]
    fn harmonic_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(3) - 11.0 / 6.0).abs() < 1e-12);
    }

    fn random_instance(g: i64, seed: u64) -> MultiInstance {
        // SplitMix64-driven small instances.
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let n = 2 + (next() % 3) as usize;
        let jobs: Vec<MultiJob> = (0..n)
            .map(|_| {
                let k = 1 + (next() % 2) as usize;
                let mut ivs = Vec::new();
                let mut lo = (next() % 3) as i64;
                for _ in 0..k {
                    let len = 1 + (next() % 3) as i64;
                    ivs.push((lo, lo + len));
                    lo += len + 1 + (next() % 2) as i64;
                }
                let total: i64 = ivs.iter().map(|(a, b)| b - a).sum();
                let p = 1 + (next() % total.min(3) as u64) as i64;
                MultiJob::new(ivs, p).unwrap()
            })
            .collect();
        MultiInstance::new(g, jobs).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_greedy_within_harmonic_of_opt(seed in any::<u64>(), g in 1i64..4) {
            let inst = random_instance(g, seed);
            prop_assume!(inst.candidate_slots().len() <= 14);
            match (greedy_cover(&inst), brute_force_opt(&inst, 14)) {
                (Some(gr), Some(opt)) => {
                    inst.verify(&gr.slots, &gr.assignment).unwrap();
                    let bound = harmonic(g) * opt.active_time() as f64 + 1e-9;
                    prop_assert!(
                        gr.active_time() as f64 <= bound,
                        "greedy {} vs H_g·OPT {}", gr.active_time(), bound
                    );
                }
                (None, None) => {}
                (a, b) => prop_assert!(false, "feasibility disagreement: {:?} vs {:?}",
                    a.map(|s| s.active_time()), b.map(|s| s.active_time())),
            }
        }

        #[test]
        fn prop_max_volume_is_monotone_submodular_on_chains(
            seed in any::<u64>(), g in 1i64..4,
        ) {
            // Spot-check the Wolsey precondition: marginal gains shrink
            // along a fixed insertion chain (diminishing returns).
            let inst = random_instance(g, seed);
            let cand = inst.candidate_slots();
            prop_assume!(cand.len() >= 3 && cand.len() <= 12);
            // f(S + t) - f(S) ≥ f(S') - f(S'+... ) for S ⊆ S': test via
            // marginal of the *last* element against marginal on a prefix.
            let t = *cand.last().unwrap();
            let small: Vec<i64> = cand[..1].to_vec();
            let large: Vec<i64> = cand[..cand.len() - 1].to_vec();
            let with = |mut s: Vec<i64>| { s.push(t); s.sort_unstable(); s };
            let marg_small = inst.max_volume(&with(small.clone())) - inst.max_volume(&small);
            let marg_large = inst.max_volume(&with(large.clone())) - inst.max_volume(&large);
            prop_assert!(marg_small >= marg_large, "submodularity violated");
        }
    }
}
