//! Small/big equivalence oracle for `Int` and `Ratio`.
//!
//! `Int` carries word-sized values inline (`Small(i128)`) and spills to
//! sign+limbs only past the i128 range; every operator has a machine-
//! word fast path next to the limb algorithms. These tests pit the two
//! against each other: the same arithmetic is routed once directly
//! (fast path) and once through a 2^200-scaled detour that forces the
//! limb representation end to end, and the results must be equal — and
//! equally hashed — after canonicalization. Operand generation is
//! biased toward the promotion boundaries (±i128 range ends, i64::MIN,
//! power-of-two shift/carry edges) where the two representations meet.

use atsched_num::{Int, Ratio};
use proptest::{prop_assert, prop_assert_eq, prop_assume, proptest, strategy::any};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn int(v: i128) -> Int {
    Int::from(v)
}

/// The scale factor pushing any nonzero word-sized value far past the
/// inline range, so scaled arithmetic runs on the limb representation.
fn big_scale() -> Int {
    Int::one().shl(200)
}

/// Bias a raw i128 toward representation boundaries: shift/carry edges
/// (2^63, 2^64, 2^127), the inline range ends, and i64::MIN.
fn edgy(raw: i128, sel: u8) -> i128 {
    const EDGES: [i128; 12] = [
        0,
        1,
        -1,
        i64::MAX as i128,
        i64::MIN as i128,
        u64::MAX as i128,
        (u64::MAX as i128) + 1,
        i128::MAX,
        i128::MIN,
        i128::MIN + 1,
        1 << 100,
        -(1 << 100),
    ];
    match sel {
        // About a tenth of the draws land exactly on an edge...
        s if (s as usize) < 2 * EDGES.len() => EDGES[s as usize % EDGES.len()],
        // ...two thirds within a few steps of one...
        s if s < 192 => {
            EDGES[raw.unsigned_abs() as usize % EDGES.len()].wrapping_add((s % 7) as i128 - 3)
        }
        // ...the rest anywhere.
        _ => raw,
    }
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// The canonical-form invariant every assertion below leans on: a
/// result in the i128 range must be inline; anything larger sits in the
/// stack `Medium` tier iff its magnitude fits four limbs, else on the
/// heap — the tier is a function of the value alone.
fn assert_canonical(v: &Int) -> Result<(), proptest::test_runner::TestCaseError> {
    let inline = v.to_i128().is_some();
    prop_assert_eq!(v.is_inline(), inline);
    let limbs = v.bits().div_ceil(64);
    prop_assert_eq!(v.is_medium(), !inline && limbs <= 4);
    Ok(())
}

proptest! {
    /// `a ± b` via the inline fast path vs forced limb arithmetic:
    /// (aK ± bK) / K with K = 2^200.
    #[test]
    fn int_add_sub_match_big_detour(
        (ra, sa) in (any::<i128>(), any::<u8>()),
        (rb, sb) in (any::<i128>(), any::<u8>()),
    ) {
        let (a, b) = (edgy(ra, sa), edgy(rb, sb));
        let k = big_scale();
        let (xa, xb) = (int(a), int(b));

        let fast_add = &xa + &xb;
        let (slow_add, rem) = (&(&xa * &k) + &(&xb * &k)).div_rem(&k);
        prop_assert!(rem.is_zero());
        prop_assert_eq!(&fast_add, &slow_add);
        prop_assert_eq!(hash_of(&fast_add), hash_of(&slow_add));
        assert_canonical(&fast_add)?;

        let fast_sub = &xa - &xb;
        let (slow_sub, rem) = (&(&xa * &k) - &(&xb * &k)).div_rem(&k);
        prop_assert!(rem.is_zero());
        prop_assert_eq!(&fast_sub, &slow_sub);
        prop_assert_eq!(hash_of(&fast_sub), hash_of(&slow_sub));
        assert_canonical(&fast_sub)?;
    }

    /// `a * b` via the inline fast path vs (aK)(bK) / K².
    #[test]
    fn int_mul_matches_big_detour(
        (ra, sa) in (any::<i128>(), any::<u8>()),
        (rb, sb) in (any::<i128>(), any::<u8>()),
    ) {
        let (a, b) = (edgy(ra, sa), edgy(rb, sb));
        let k = big_scale();
        let fast = &int(a) * &int(b);
        let (slow, rem) = (&(&int(a) * &k) * &(&int(b) * &k)).div_rem(&(&k * &k));
        prop_assert!(rem.is_zero());
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(hash_of(&fast), hash_of(&slow));
        assert_canonical(&fast)?;
    }

    /// Truncating division against the i128 reference wherever the
    /// reference exists, including the `i128::MIN / -1` promotion.
    #[test]
    fn int_div_rem_matches_i128_reference(
        (ra, sa) in (any::<i128>(), any::<u8>()),
        (rb, sb) in (any::<i128>(), any::<u8>()),
    ) {
        let (a, b) = (edgy(ra, sa), edgy(rb, sb));
        prop_assume!(b != 0);
        let (q, r) = int(a).div_rem(&int(b));
        match a.checked_div(b) {
            Some(qq) => {
                prop_assert_eq!(&q, &int(qq));
                prop_assert_eq!(&r, &int(a % b));
            }
            None => {
                // i128::MIN / -1: the quotient 2^127 must promote.
                prop_assert!(!q.is_inline());
                prop_assert_eq!(&q, &int(i128::MIN).abs());
                prop_assert!(r.is_zero());
            }
        }
        // Euclid round-trip holds regardless of representation.
        prop_assert_eq!(&(&(&q * &int(b)) + &r), &int(a));
    }

    /// Values equal through any construction route — literal, negated
    /// negation, demoted big arithmetic, string round-trip — are one
    /// value: same representation, `Eq`, and hash.
    #[test]
    fn int_hash_eq_consistency_across_routes((raw, sel) in (any::<i128>(), any::<u8>())) {
        let v = edgy(raw, sel);
        let direct = int(v);
        let negneg = -(-direct.clone());
        let k = big_scale();
        let (demoted, rem) = (&direct * &k).div_rem(&k);
        let parsed: Int = direct.to_string().parse().unwrap();
        prop_assert!(rem.is_zero());
        for other in [&negneg, &demoted, &parsed] {
            prop_assert_eq!(&direct, other);
            prop_assert_eq!(hash_of(&direct), hash_of(other));
            prop_assert_eq!(direct.is_inline(), other.is_inline());
        }
        prop_assert_eq!(direct.to_i128(), Some(v));
        // Ordering agrees with the reference on the inline range.
        prop_assert_eq!(direct.cmp(&Int::zero()), v.cmp(&0));
    }

    /// Ratio fast paths (shared-denominator add, coprime-denominator
    /// Knuth reduction, gcd-free integer cases) vs the textbook
    /// cross-multiplied construction on forced-big components.
    #[test]
    fn ratio_ops_match_cross_multiplied_reference(
        (ra, sa) in (any::<i128>(), any::<u8>()),
        rb in any::<i128>(),
        (rc, sc) in (any::<i128>(), any::<u8>()),
        rd in any::<i128>(),
    ) {
        let (a, c) = (edgy(ra, sa), edgy(rc, sc));
        // Denominator pool is biased small so equal/coprime/shared-
        // factor denominator fast paths all get exercised.
        let b = (rb % 40) + 41; // 1..=81
        let d = (rd % 40) + 41;
        let x = Ratio::new(int(a), int(b));
        let y = Ratio::new(int(c), int(d));
        let k = big_scale();
        // Scaling both components by K forces limb arithmetic inside
        // `new`'s reduction without changing the value.
        let xk = Ratio::new(&int(a) * &k, &int(b) * &k);
        prop_assert_eq!(&x, &xk);
        prop_assert_eq!(hash_of(&x), hash_of(&xk));

        let sum = &x + &y;
        let reference = Ratio::new(
            &(&int(a) * &int(d)) + &(&int(c) * &int(b)),
            &int(b) * &int(d),
        );
        prop_assert_eq!(&sum, &reference);
        prop_assert_eq!(hash_of(&sum), hash_of(&reference));

        let diff = &x - &y;
        let reference = Ratio::new(
            &(&int(a) * &int(d)) - &(&int(c) * &int(b)),
            &int(b) * &int(d),
        );
        prop_assert_eq!(&diff, &reference);

        let prod = &x * &y;
        let reference = Ratio::new(&int(a) * &int(c), &int(b) * &int(d));
        prop_assert_eq!(&prod, &reference);
        prop_assert_eq!(hash_of(&prod), hash_of(&reference));

        // Comparison agrees with cross multiplication.
        let lhs = &int(a) * &int(d);
        let rhs = &int(c) * &int(b);
        prop_assert_eq!(x.cmp(&y), lhs.cmp(&rhs));

        // recip's gcd-free path preserves canonical form.
        if !y.is_zero() {
            prop_assert_eq!(&(&x * &y.recip()), &Ratio::new(
                &int(a) * &int(d),
                &int(b) * &int(c),
            ));
        }
    }
}

proptest! {
    /// The same arithmetic routed through the stack `Medium` band
    /// (×2^100 keeps products within four limbs) and the heap `Big`
    /// band (×2^400) must agree — same value, same hash, canonical
    /// tier — once the scale divides back out.
    #[test]
    fn medium_tier_matches_small_and_big_routes(
        (ra, sa) in (any::<i128>(), any::<u8>()),
        (rb, sb) in (any::<i128>(), any::<u8>()),
    ) {
        let (a, b) = (edgy(ra, sa), edgy(rb, sb));
        let (xa, xb) = (int(a), int(b));
        let fast_add = &xa + &xb;
        let fast_mul = &xa * &xb;
        for shift in [100u32, 400] {
            let k = Int::one().shl(shift);
            let scaled = &xa * &k;
            assert_canonical(&scaled)?;

            let (slow_add, rem) = (&(&xa * &k) + &(&xb * &k)).div_rem(&k);
            prop_assert!(rem.is_zero());
            prop_assert_eq!(&fast_add, &slow_add);
            prop_assert_eq!(hash_of(&fast_add), hash_of(&slow_add));
            assert_canonical(&slow_add)?;

            let (slow_mul, rem) = (&(&xa * &k) * &(&xb * &k)).div_rem(&(&k * &k));
            prop_assert!(rem.is_zero());
            prop_assert_eq!(&fast_mul, &slow_mul);
            prop_assert_eq!(hash_of(&fast_mul), hash_of(&slow_mul));
            assert_canonical(&slow_mul)?;

            // Display/parse round-trips out of either band.
            let parsed: Int = scaled.to_string().parse().unwrap();
            prop_assert_eq!(&parsed, &scaled);
            prop_assert_eq!(hash_of(&parsed), hash_of(&scaled));
        }
    }
}

/// Non-random spot checks at the exact promotion boundaries.
#[test]
fn int_promotion_boundaries_exact() {
    let max = int(i128::MAX);
    let min = int(i128::MIN);
    assert!(max.is_inline() && min.is_inline());

    // One step past either end promotes; stepping back demotes.
    let over = &max + &Int::one();
    assert!(!over.is_inline());
    assert_eq!(&over - &Int::one(), max);
    let under = &min - &Int::one();
    assert!(!under.is_inline());
    assert_eq!(&under + &Int::one(), min);

    // |i128::MIN| = 2^127 does not fit; negating it round-trips.
    let abs_min = min.abs();
    assert!(!abs_min.is_inline());
    assert_eq!(-abs_min, min);
    assert_eq!(min.to_i128(), Some(i128::MIN));

    // i64::MIN survives the i64 accessor boundary in both directions.
    let m64 = int(i64::MIN as i128);
    assert_eq!(m64.to_i64(), Some(i64::MIN));
    assert_eq!(m64.abs().to_i64(), None);
    assert_eq!(m64.abs().to_i128(), Some(-(i64::MIN as i128)));

    // Squaring the u64 carry edge needs the full 128-bit magnitude
    // (2^128 - 2^65 + 1 > i128::MAX), so it promotes — and divides
    // back down exactly.
    let edge = int(u64::MAX as i128);
    let sq = &edge * &edge;
    assert!(!sq.is_inline());
    let (q, r) = sq.div_rem(&edge);
    assert_eq!(q, edge);
    assert!(r.is_zero());

    // The largest inline square: floor(sqrt(i128::MAX)).
    let root = int(13_043_817_825_332_782_212);
    assert!((&root * &root).is_inline());
    assert!(!(&(&root + &Int::one()) * &(&root + &Int::one())).is_inline());
}
