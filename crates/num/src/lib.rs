//! # atsched-num
//!
//! Arbitrary-precision signed integers ([`Int`]) and exact rationals
//! ([`Ratio`]) built from scratch for the nested active-time scheduling
//! reproduction.
//!
//! The 9/5-approximation of Cao et al. (SPAA 2022) starts by *solving a
//! linear program* and then makes rounding decisions through exact
//! comparisons such as `x(i) < L(i)` and `9·x(Des(i)) ≥ 5·(x̃(Des(i)) + 1)`.
//! Floating-point noise at those comparison boundaries can flip a rounding
//! decision, so the reference pipeline runs the simplex method and the
//! rounding procedure entirely over exact rationals. No external bignum
//! crate is on the approved dependency list; this crate is the substrate.
//!
//! ## Contents
//!
//! * [`Int`] — sign-magnitude big integer over little-endian `u64` limbs.
//!   Schoolbook and Karatsuba multiplication, Knuth Algorithm D division,
//!   Euclidean gcd, decimal parsing/printing, `f64` conversion.
//! * [`Ratio`] — always-normalized rational (`den > 0`, `gcd(num,den)=1`)
//!   with overflow-free exact arithmetic and total ordering.
//!
//! ## Example
//!
//! ```
//! use atsched_num::{Int, Ratio};
//!
//! let a = Int::from(10i64).pow(30) + Int::from(7i64);
//! let (q, r) = a.div_rem(&Int::from(9i64));
//! assert_eq!(&(&q * &Int::from(9i64)) + &r, a);
//!
//! let x = Ratio::new(Int::from(9i64), Int::from(5i64)); // 9/5
//! assert_eq!(x.floor(), Int::from(1i64));
//! assert_eq!(x.ceil(), Int::from(2i64));
//! assert!(x > Ratio::from_i64(1) && x < Ratio::from_i64(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod int;
mod ratio;

pub use int::Int;
pub use ratio::Ratio;

/// Greatest common divisor of two [`Int`]s (always non-negative).
///
/// `gcd(0, 0) = 0`; otherwise the result is positive.
pub fn gcd(a: &Int, b: &Int) -> Int {
    int::gcd(a, b)
}

/// Least common multiple of two [`Int`]s (always non-negative).
pub fn lcm(a: &Int, b: &Int) -> Int {
    if a.is_zero() || b.is_zero() {
        return Int::zero();
    }
    let g = gcd(a, b);
    (&(a / &g) * b).abs()
}
