//! Sign-magnitude arbitrary-precision integers.
//!
//! Representation: `sign ∈ {-1, 0, +1}` plus a little-endian vector of
//! `u64` limbs with no trailing (most-significant) zero limbs. The zero
//! value is canonically `sign = 0, mag = []`.
//!
//! The implementation favours clarity and exactness over peak throughput,
//! but includes the two optimizations that matter for the exact simplex
//! workload: Karatsuba multiplication above a limb threshold and Knuth
//! Algorithm D long division (both validated against `u128` ground truth
//! and property tests).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Limbs at or above this length use Karatsuba multiplication.
const KARATSUBA_THRESHOLD: usize = 32;

/// An arbitrary-precision signed integer.
///
/// See the [crate docs](crate) for why this exists. All arithmetic is
/// exact; operations never overflow (they allocate instead).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Int {
    /// -1, 0, or +1. Zero iff `mag` is empty.
    sign: i8,
    /// Little-endian magnitude; no high zero limbs.
    mag: Vec<u64>,
}

impl Int {
    /// The integer 0.
    pub fn zero() -> Self {
        Int { sign: 0, mag: Vec::new() }
    }

    /// The integer 1.
    pub fn one() -> Self {
        Int { sign: 1, mag: vec![1] }
    }

    /// Construct from a raw sign and magnitude, normalizing.
    fn from_sign_mag(sign: i8, mut mag: Vec<u64>) -> Self {
        trim(&mut mag);
        if mag.is_empty() {
            Int::zero()
        } else {
            debug_assert!(sign == 1 || sign == -1);
            Int { sign, mag }
        }
    }

    /// True iff this is 0.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// True iff this is 1.
    pub fn is_one(&self) -> bool {
        self.sign == 1 && self.mag.len() == 1 && self.mag[0] == 1
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// True iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// The sign as -1 / 0 / +1.
    pub fn signum(&self) -> i8 {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        if self.sign < 0 {
            Int { sign: 1, mag: self.mag.clone() }
        } else {
            self.clone()
        }
    }

    /// Number of significant bits of the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&hi) => (self.mag.len() as u64) * 64 - hi.leading_zeros() as u64,
        }
    }

    /// True iff the magnitude is even.
    pub fn is_even(&self) -> bool {
        self.mag.first().is_none_or(|l| l & 1 == 0)
    }

    /// Quotient and remainder of truncated division (`q` rounds toward
    /// zero; `r` has the sign of `self`, with `self == q*rhs + r` and
    /// `|r| < |rhs|`).
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &Int) -> (Int, Int) {
        assert!(!rhs.is_zero(), "Int division by zero");
        if self.is_zero() {
            return (Int::zero(), Int::zero());
        }
        let (q_mag, r_mag) = mag_div_rem(&self.mag, &rhs.mag);
        let q_sign = self.sign * rhs.sign;
        let q = Int::from_sign_mag(q_sign, q_mag);
        let r = Int::from_sign_mag(self.sign, r_mag);
        (q, r)
    }

    /// Euclidean division: quotient rounded toward negative infinity.
    pub fn div_floor(&self, rhs: &Int) -> Int {
        let (q, r) = self.div_rem(rhs);
        if !r.is_zero() && (r.sign * rhs.sign) < 0 {
            q - Int::one()
        } else {
            q
        }
    }

    /// Ceiling division: quotient rounded toward positive infinity.
    pub fn div_ceil_int(&self, rhs: &Int) -> Int {
        let (q, r) = self.div_rem(rhs);
        if !r.is_zero() && (r.sign * rhs.sign) > 0 {
            q + Int::one()
        } else {
            q
        }
    }

    /// `self^exp` by binary exponentiation. `0^0 == 1`.
    pub fn pow(&self, exp: u32) -> Int {
        let mut base = self.clone();
        let mut exp = exp;
        let mut acc = Int::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Shift left by `n` bits (multiply by 2^n).
    pub fn shl(&self, n: u32) -> Int {
        if self.is_zero() {
            return Int::zero();
        }
        Int::from_sign_mag(self.sign, mag_shl(&self.mag, n as usize))
    }

    /// Shift the magnitude right by `n` bits, truncating toward zero.
    pub fn shr(&self, n: u32) -> Int {
        if self.is_zero() {
            return Int::zero();
        }
        Int::from_sign_mag(self.sign, mag_shr(&self.mag, n as usize))
    }

    /// Lossy conversion to `f64` (round-to-nearest on the top bits; very
    /// large values map to ±inf).
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        let v = if bits <= 128 {
            let mut v: u128 = 0;
            for (i, &l) in self.mag.iter().enumerate() {
                v |= (l as u128) << (64 * i);
            }
            v as f64
        } else {
            // Take the top 128 bits and scale.
            let shift = bits - 128;
            let top = self.shr(shift as u32);
            let mut v: u128 = 0;
            for (i, &l) in top.mag.iter().enumerate() {
                v |= (l as u128) << (64 * i);
            }
            (v as f64) * 2f64.powi(shift as i32)
        };
        if self.sign < 0 {
            -v
        } else {
            v
        }
    }

    /// Checked conversion to `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0];
                if self.sign > 0 && m <= i64::MAX as u64 {
                    Some(m as i64)
                } else if self.sign < 0 && m <= (i64::MAX as u64) + 1 {
                    Some((m as i64).wrapping_neg())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Checked conversion to `u64` (fails for negatives).
    pub fn to_u64(&self) -> Option<u64> {
        match (self.sign, self.mag.len()) {
            (0, _) => Some(0),
            (1, 1) => Some(self.mag[0]),
            _ => None,
        }
    }

    /// Compare magnitudes only (ignoring sign).
    pub fn cmp_abs(&self, other: &Int) -> Ordering {
        mag_cmp(&self.mag, &other.mag)
    }
}

// --- conversions -----------------------------------------------------------

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int { sign: 1, mag: vec![v as u64] },
            Ordering::Less => Int { sign: -1, mag: vec![(v as i128).unsigned_abs() as u64] },
        }
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        if v == 0 {
            Int::zero()
        } else {
            Int { sign: 1, mag: vec![v] }
        }
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Self {
        Int::from(v as i64)
    }
}

impl From<usize> for Int {
    fn from(v: usize) -> Self {
        Int::from(v as u64)
    }
}

impl From<i128> for Int {
    fn from(v: i128) -> Self {
        if v == 0 {
            return Int::zero();
        }
        let sign = if v > 0 { 1 } else { -1 };
        let m = v.unsigned_abs();
        let mut mag = vec![m as u64, (m >> 64) as u64];
        trim(&mut mag);
        Int { sign, mag }
    }
}

impl From<u128> for Int {
    fn from(v: u128) -> Self {
        if v == 0 {
            return Int::zero();
        }
        let mut mag = vec![v as u64, (v >> 64) as u64];
        trim(&mut mag);
        Int { sign: 1, mag }
    }
}

/// Error when parsing an [`Int`] from a decimal string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError(pub(crate) String);

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big-integer literal: {}", self.0)
    }
}

impl std::error::Error for ParseIntError {}

impl FromStr for Int {
    type Err = ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, digits) = match s.as_bytes().first() {
            Some(b'-') => (-1i8, &s[1..]),
            Some(b'+') => (1, &s[1..]),
            _ => (1, s),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseIntError(s.to_owned()));
        }
        // Consume 19 decimal digits (one u64-sized chunk) per step.
        let mut acc = Int::zero();
        let chunk_base = Int::from(10_000_000_000_000_000_000u64); // 10^19
        let bytes = digits.as_bytes();
        let mut idx = 0;
        let first_len = {
            let rem = bytes.len() % 19;
            if rem == 0 {
                19.min(bytes.len())
            } else {
                rem
            }
        };
        while idx < bytes.len() {
            let len = if idx == 0 { first_len } else { 19 };
            let chunk = &digits[idx..idx + len];
            let val: u64 = chunk.parse().expect("ascii digits");
            if idx == 0 {
                acc = Int::from(val);
            } else {
                acc = &(&acc * &chunk_base) + &Int::from(val);
            }
            idx += len;
        }
        if sign < 0 {
            acc = -acc;
        }
        Ok(acc)
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeatedly divide by 10^19, collecting low-order chunks.
        let mut chunks: Vec<u64> = Vec::new();
        let mut mag = self.mag.clone();
        while !mag.is_empty() {
            let rem = mag_div_single_in_place(&mut mag, 10_000_000_000_000_000_000u64);
            trim(&mut mag);
            chunks.push(rem);
        }
        let mut s = String::with_capacity(chunks.len() * 19);
        for (i, chunk) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:019}"));
            }
        }
        f.pad_integral(self.sign >= 0, "", &s)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

// --- ordering ---------------------------------------------------------------

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        match self.sign {
            0 => Ordering::Equal,
            1 => mag_cmp(&self.mag, &other.mag),
            _ => mag_cmp(&other.mag, &self.mag),
        }
    }
}

// --- arithmetic on references (canonical impls) ------------------------------

impl<'b> Add<&'b Int> for &Int {
    type Output = Int;
    fn add(self, rhs: &'b Int) -> Int {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if self.sign == rhs.sign {
            Int::from_sign_mag(self.sign, mag_add(&self.mag, &rhs.mag))
        } else {
            match mag_cmp(&self.mag, &rhs.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int::from_sign_mag(self.sign, mag_sub(&self.mag, &rhs.mag)),
                Ordering::Less => Int::from_sign_mag(rhs.sign, mag_sub(&rhs.mag, &self.mag)),
            }
        }
    }
}

impl<'b> Sub<&'b Int> for &Int {
    type Output = Int;
    fn sub(self, rhs: &'b Int) -> Int {
        if rhs.is_zero() {
            return self.clone();
        }
        let negated = Int { sign: -rhs.sign, mag: rhs.mag.clone() };
        self + &negated
    }
}

impl<'b> Mul<&'b Int> for &Int {
    type Output = Int;
    fn mul(self, rhs: &'b Int) -> Int {
        if self.is_zero() || rhs.is_zero() {
            return Int::zero();
        }
        Int::from_sign_mag(self.sign * rhs.sign, mag_mul(&self.mag, &rhs.mag))
    }
}

impl<'b> Div<&'b Int> for &Int {
    type Output = Int;
    fn div(self, rhs: &'b Int) -> Int {
        self.div_rem(rhs).0
    }
}

impl<'b> Rem<&'b Int> for &Int {
    type Output = Int;
    fn rem(self, rhs: &'b Int) -> Int {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<Int> for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                (&self).$method(&rhs)
            }
        }
        impl<'b> $trait<&'b Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &'b Int) -> Int {
                (&self).$method(rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int { sign: -self.sign, mag: self.mag }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int { sign: -self.sign, mag: self.mag.clone() }
    }
}

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, rhs: &Int) {
        *self = &*self * rhs;
    }
}

impl std::iter::Sum for Int {
    fn sum<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::zero(), |a, b| a + b)
    }
}

// --- gcd ---------------------------------------------------------------------

/// Euclidean gcd on magnitudes; result is non-negative.
pub(crate) fn gcd(a: &Int, b: &Int) -> Int {
    let mut a = a.abs();
    let mut b = b.abs();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

// --- magnitude (unsigned little-endian limb vector) helpers -------------------

fn trim(mag: &mut Vec<u64>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in long.iter().enumerate() {
        let s = limb as u128 + *short.get(i).unwrap_or(&0) as u128 + carry as u128;
        out.push(s as u64);
        carry = (s >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Requires `a >= b` (as magnitudes).
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &ai) in a.iter().enumerate() {
        let bi = *b.get(i).unwrap_or(&0);
        let (d, b1) = ai.overflowing_sub(bi);
        let (d, b2) = d.overflowing_sub(borrow);
        out.push(d);
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) >= KARATSUBA_THRESHOLD {
        karatsuba_mul(a, b)
    } else {
        schoolbook_mul(a, b)
    }
}

fn schoolbook_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

/// Karatsuba multiplication: splits at `m = min(len)/2`-ish and recurses.
fn karatsuba_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let m = a.len().min(b.len()) / 2;
    debug_assert!(m >= 1);
    let (a0, a1) = a.split_at(m);
    let (b0, b1) = b.split_at(m);
    // z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)*(b0+b1) - z0 - z2
    let z0 = mag_mul_trimmed(a0, b0);
    let z2 = mag_mul_trimmed(a1, b1);
    let a01 = mag_add(&trimmed(a0), &trimmed(a1));
    let b01 = mag_add(&trimmed(b0), &trimmed(b1));
    let mut z1 = mag_mul(&a01, &b01);
    z1 = mag_sub(&z1, &z0);
    z1 = mag_sub(&z1, &z2);
    // result = z0 + z1 << 64m + z2 << 128m
    let mut out = vec![0u64; a.len() + b.len()];
    add_into(&mut out, &z0, 0);
    add_into(&mut out, &z1, m);
    add_into(&mut out, &z2, 2 * m);
    trim(&mut out);
    out
}

fn trimmed(a: &[u64]) -> Vec<u64> {
    let mut v = a.to_vec();
    trim(&mut v);
    v
}

fn mag_mul_trimmed(a: &[u64], b: &[u64]) -> Vec<u64> {
    let a = trimmed(a);
    let b = trimmed(b);
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    mag_mul(&a, &b)
}

/// `out[offset..] += addend` with carry propagation.
fn add_into(out: &mut [u64], addend: &[u64], offset: usize) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < addend.len() || carry != 0 {
        let a = *addend.get(i).unwrap_or(&0);
        let s = out[offset + i] as u128 + a as u128 + carry as u128;
        out[offset + i] = s as u64;
        carry = (s >> 64) as u64;
        i += 1;
    }
}

fn mag_shl(mag: &[u64], n: usize) -> Vec<u64> {
    let limb_shift = n / 64;
    let bit_shift = n % 64;
    let mut out = vec![0u64; mag.len() + limb_shift + 1];
    for (i, &l) in mag.iter().enumerate() {
        if bit_shift == 0 {
            out[i + limb_shift] |= l;
        } else {
            out[i + limb_shift] |= l << bit_shift;
            out[i + limb_shift + 1] |= l >> (64 - bit_shift);
        }
    }
    trim(&mut out);
    out
}

fn mag_shr(mag: &[u64], n: usize) -> Vec<u64> {
    let limb_shift = n / 64;
    let bit_shift = n % 64;
    if limb_shift >= mag.len() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(mag.len() - limb_shift);
    for i in limb_shift..mag.len() {
        let mut l = mag[i] >> bit_shift;
        if bit_shift > 0 && i + 1 < mag.len() {
            l |= mag[i + 1] << (64 - bit_shift);
        }
        out.push(l);
    }
    trim(&mut out);
    out
}

/// Divide magnitude by a single limb in place; returns the remainder.
fn mag_div_single_in_place(mag: &mut [u64], d: u64) -> u64 {
    debug_assert!(d != 0);
    let mut rem = 0u128;
    for l in mag.iter_mut().rev() {
        let cur = (rem << 64) | *l as u128;
        *l = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    rem as u64
}

/// Knuth Algorithm D long division on magnitudes. Returns `(quotient,
/// remainder)`.
fn mag_div_rem(u: &[u64], v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(!v.is_empty());
    match mag_cmp(u, v) {
        Ordering::Less => return (Vec::new(), u.to_vec()),
        Ordering::Equal => return (vec![1], Vec::new()),
        Ordering::Greater => {}
    }
    if v.len() == 1 {
        let mut q = u.to_vec();
        let rem = mag_div_single_in_place(&mut q, v[0]);
        trim(&mut q);
        let r = if rem == 0 { Vec::new() } else { vec![rem] };
        return (q, r);
    }

    // Normalize: shift so the divisor's top bit is set.
    let shift = v.last().unwrap().leading_zeros() as usize;
    let vn = mag_shl(v, shift);
    let mut un = mag_shl(u, shift);
    debug_assert_eq!(vn.len(), v.len());
    un.resize(u.len() + 1, 0); // ensure an extra high limb

    let n = vn.len();
    let m = un.len() - n - 1; // quotient has m+1 limbs
    let b: u128 = 1 << 64;
    let d1 = vn[n - 1] as u128;
    let d0 = vn[n - 2] as u128;

    let mut q = vec![0u64; m + 1];
    for j in (0..=m).rev() {
        let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = num / d1;
        let mut rhat = num % d1;
        loop {
            if qhat >= b || qhat * d0 > ((rhat << 64) | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += d1;
                if rhat < b {
                    continue;
                }
            }
            break;
        }

        // Multiply and subtract: un[j..j+n+1] -= qhat * vn.
        let mut carry: u128 = 0;
        let mut borrow: u64 = 0;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let (d, b1) = un[j + i].overflowing_sub(p as u64);
            let (d, b2) = d.overflowing_sub(borrow);
            un[j + i] = d;
            borrow = b1 as u64 + b2 as u64;
        }
        let (d, b1) = un[j + n].overflowing_sub(carry as u64);
        let (d, b2) = d.overflowing_sub(borrow);
        un[j + n] = d;

        if b1 || b2 {
            // qhat was one too large: add the divisor back.
            qhat -= 1;
            let mut c = 0u64;
            for i in 0..n {
                let s = un[j + i] as u128 + vn[i] as u128 + c as u128;
                un[j + i] = s as u64;
                c = (s >> 64) as u64;
            }
            un[j + n] = un[j + n].wrapping_add(c);
        }
        q[j] = qhat as u64;
    }

    trim(&mut q);
    let mut r = mag_shr(&un[..n], shift);
    trim(&mut r);
    (q, r)
}

// --- serde (decimal strings: robust and readable) -----------------------------

#[cfg(feature = "serde")]
impl serde::Serialize for Int {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Int {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

// --- tests --------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn int(v: i128) -> Int {
        Int::from(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(Int::zero().is_zero());
        assert!(Int::one().is_one());
        assert_eq!(Int::zero(), Int::from(0i64));
        assert_eq!(Int::zero().to_string(), "0");
        assert_eq!((-Int::one()).to_string(), "-1");
        assert_eq!(Int::zero().bits(), 0);
        assert_eq!(Int::one().bits(), 1);
        assert_eq!(Int::from(256u64).bits(), 9);
    }

    #[test]
    fn from_i64_extremes() {
        assert_eq!(Int::from(i64::MIN).to_string(), i64::MIN.to_string());
        assert_eq!(Int::from(i64::MAX).to_string(), i64::MAX.to_string());
        assert_eq!(Int::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(Int::from(i64::MAX).to_i64(), Some(i64::MAX));
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(int(2) + int(3), int(5));
        assert_eq!(int(-2) + int(3), int(1));
        assert_eq!(int(2) + int(-3), int(-1));
        assert_eq!(int(-2) + int(-3), int(-5));
        assert_eq!(int(7) - int(7), Int::zero());
        assert_eq!(int(0) - int(7), int(-7));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(int(6) * int(-7), int(-42));
        assert_eq!(int(-6) * int(-7), int(42));
        assert_eq!(int(0) * int(-7), Int::zero());
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        assert_eq!(int(7).div_rem(&int(2)), (int(3), int(1)));
        assert_eq!(int(-7).div_rem(&int(2)), (int(-3), int(-1)));
        assert_eq!(int(7).div_rem(&int(-2)), (int(-3), int(1)));
        assert_eq!(int(-7).div_rem(&int(-2)), (int(3), int(-1)));
    }

    #[test]
    fn div_floor_and_ceil() {
        assert_eq!(int(7).div_floor(&int(2)), int(3));
        assert_eq!(int(-7).div_floor(&int(2)), int(-4));
        assert_eq!(int(7).div_ceil_int(&int(2)), int(4));
        assert_eq!(int(-7).div_ceil_int(&int(2)), int(-3));
        assert_eq!(int(8).div_floor(&int(2)), int(4));
        assert_eq!(int(8).div_ceil_int(&int(2)), int(4));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = int(5).div_rem(&Int::zero());
    }

    #[test]
    fn pow_small() {
        assert_eq!(int(3).pow(0), Int::one());
        assert_eq!(int(3).pow(4), int(81));
        assert_eq!(int(-2).pow(5), int(-32));
        assert_eq!(int(10).pow(19).to_string(), "10000000000000000000");
    }

    #[test]
    fn display_and_parse_roundtrip_large() {
        let s = "123456789012345678901234567890123456789";
        let v: Int = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        let neg: Int = format!("-{s}").parse().unwrap();
        assert_eq!(neg.to_string(), format!("-{s}"));
        assert!(neg < Int::zero());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Int>().is_err());
        assert!("-".parse::<Int>().is_err());
        assert!("12a".parse::<Int>().is_err());
        assert!("1 2".parse::<Int>().is_err());
    }

    #[test]
    fn ordering_mixed_signs() {
        assert!(int(-5) < int(3));
        assert!(int(3) < int(5));
        assert!(int(-3) > int(-5));
        assert!(Int::zero() > int(-1));
        assert!(Int::zero() < int(1));
    }

    #[test]
    fn shifts() {
        assert_eq!(int(1).shl(70).shr(70), int(1));
        assert_eq!(int(5).shl(3), int(40));
        assert_eq!(int(40).shr(3), int(5));
        assert_eq!(int(41).shr(3), int(5)); // truncates
        assert_eq!(int(-40).shr(3), int(-5));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(gcd(&int(12), &int(18)), int(6));
        assert_eq!(gcd(&int(-12), &int(18)), int(6));
        assert_eq!(gcd(&int(0), &int(5)), int(5));
        assert_eq!(gcd(&int(0), &int(0)), Int::zero());
        assert_eq!(gcd(&int(7), &int(13)), int(1));
    }

    #[test]
    fn to_f64_small_and_huge() {
        assert_eq!(int(12345).to_f64(), 12345.0);
        assert_eq!(int(-12345).to_f64(), -12345.0);
        let big = Int::from(10i64).pow(40);
        let f = big.to_f64();
        assert!((f - 1e40).abs() / 1e40 < 1e-12);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands big enough to trip the Karatsuba path.
        let mut a_mag = Vec::new();
        let mut b_mag = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..(KARATSUBA_THRESHOLD * 2 + 3) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            a_mag.push(x);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            b_mag.push(x);
        }
        let kar = karatsuba_mul(&a_mag, &b_mag);
        let sch = schoolbook_mul(&a_mag, &b_mag);
        assert_eq!(kar, sch);
    }

    #[test]
    fn division_identity_large() {
        let a: Int = "987654321098765432109876543210987654321098765432109".parse().unwrap();
        let b: Int = "123456789012345678901".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r.cmp_abs(&b) == Ordering::Less);
    }

    #[test]
    fn division_algorithm_d_addback_path() {
        // Crafted operand pattern known to exercise the add-back branch:
        // divisor with max-limb prefix.
        let u = Int::from_sign_mag(1, vec![0, 0, 0x8000000000000000, 0x7fffffffffffffff]);
        let v = Int::from_sign_mag(1, vec![u64::MAX, 0x8000000000000000]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r.cmp_abs(&v) == Ordering::Less);
    }

    proptest! {
        #[test]
        fn prop_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let r = int(a as i128) + int(b as i128);
            prop_assert_eq!(r, int(a as i128 + b as i128));
        }

        #[test]
        fn prop_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let r = int(a as i128) * int(b as i128);
            prop_assert_eq!(r, int(a as i128 * b as i128));
        }

        #[test]
        fn prop_div_rem_matches_i128(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
            let (q, r) = int(a as i128).div_rem(&int(b as i128));
            prop_assert_eq!(q, int(a as i128 / b as i128));
            prop_assert_eq!(r, int(a as i128 % b as i128));
        }

        #[test]
        fn prop_div_rem_identity_big(
            a in proptest::collection::vec(any::<u64>(), 1..8),
            b in proptest::collection::vec(any::<u64>(), 1..5),
        ) {
            let a = Int::from_sign_mag(1, a);
            let b = Int::from_sign_mag(1, b);
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(&(&q * &b) + &r, a);
            prop_assert!(r.cmp_abs(&b) == Ordering::Less);
            prop_assert!(!r.is_negative());
        }

        #[test]
        fn prop_display_parse_roundtrip(
            mag in proptest::collection::vec(any::<u64>(), 0..6),
            neg in any::<bool>(),
        ) {
            let mut v = Int::from_sign_mag(1, mag);
            if neg { v = -v; }
            let s = v.to_string();
            let back: Int = s.parse().unwrap();
            prop_assert_eq!(back, v);
        }

        #[test]
        fn prop_mul_karatsuba_consistency(
            a in proptest::collection::vec(any::<u64>(), 64..80),
            b in proptest::collection::vec(any::<u64>(), 64..80),
        ) {
            let mut a = a; trim(&mut a);
            let mut b = b; trim(&mut b);
            prop_assume!(!a.is_empty() && !b.is_empty());
            prop_assert_eq!(mag_mul(&a, &b), schoolbook_mul(&a, &b));
        }

        #[test]
        fn prop_gcd_divides_both(a in any::<i64>(), b in any::<i64>()) {
            let g = gcd(&int(a as i128), &int(b as i128));
            if !g.is_zero() {
                prop_assert!((int(a as i128) % &g).is_zero());
                prop_assert!((int(b as i128) % &g).is_zero());
            } else {
                prop_assert_eq!(a, 0);
                prop_assert_eq!(b, 0);
            }
        }

        #[test]
        fn prop_shl_shr_roundtrip(mag in proptest::collection::vec(any::<u64>(), 1..5), n in 0u32..200) {
            let v = Int::from_sign_mag(1, mag);
            prop_assume!(!v.is_zero());
            prop_assert_eq!(v.shl(n).shr(n), v);
        }
    }
}
