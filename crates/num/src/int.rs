//! Signed integers with a small-word fast path.
//!
//! Representation is a three-variant enum:
//!
//! * `Small(i128)` — any value that fits a signed 128-bit machine word
//!   lives inline. Add/sub/mul/div/cmp/hash on small values never touch
//!   the heap; overflow is detected with checked arithmetic and promotes
//!   to the fixed-width representation.
//! * `Medium { sign, len, mag: [u64; 4] }` — sign/magnitude with up to
//!   four little-endian limbs held *on the stack*. Most promotions out
//!   of `Small` during exact simplex pivots land on 2–4 limbs, so this
//!   tier keeps the common overflow path heap-free (modelled on
//!   ark-ff's fixed-width `BigInteger` limb types).
//! * `Big { sign, mag }` — `sign ∈ {-1, +1}` plus a little-endian vector
//!   of `u64` limbs with no trailing (most-significant) zero limbs,
//!   exactly the classic sign-magnitude bignum.
//!
//! **Canonical-form invariant:** a value is `Small` *iff* it fits
//! `i128`; otherwise it is `Medium` *iff* its trimmed magnitude has at
//! most four limbs; only ≥ 5-limb magnitudes are `Big`. `Medium`
//! padding limbs above `len` are always zero. Every constructor and
//! operation demotes results that shrank, so equal values always share
//! one representation and the derived `Eq`/`Hash` stay consistent
//! (cache keys built on `Int` survive arbitrary op sequences).
//!
//! The big backend keeps the two optimizations that matter for the exact
//! simplex workload: Karatsuba multiplication above a limb threshold and
//! Knuth Algorithm D long division (both validated against `u128` ground
//! truth and property tests). In the scheduling LPs virtually every
//! tableau entry stays word-sized, so the big path is the rare slow lane,
//! not the common case.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Limbs at or above this length use Karatsuba multiplication.
const KARATSUBA_THRESHOLD: usize = 32;

/// Magnitude of `i128::MIN`, the one value whose absolute value does not
/// itself fit `i128`.
const I128_MIN_MAG: u128 = 1u128 << 127;

/// The internal representation. `Small` holds every value in the `i128`
/// range; `Medium` holds 2–4-limb magnitudes on the stack; `Big` holds
/// everything else (see the module docs for the canonical-form
/// invariant that makes derived `Eq`/`Hash` sound).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Small(i128),
    Medium {
        /// -1 or +1 (zero is always `Small(0)`).
        sign: i8,
        /// Number of significant limbs (2..=4); limbs above are zero so
        /// the derived `Eq`/`Hash` see one bit pattern per value.
        len: u8,
        /// Little-endian magnitude, zero-padded above `len`.
        mag: [u64; 4],
    },
    Big {
        /// -1 or +1 (zero is always `Small(0)`).
        sign: i8,
        /// Little-endian magnitude; no high zero limbs; always at least
        /// five limbs (shorter magnitudes demote to `Medium`/`Small`).
        mag: Vec<u64>,
    },
}

/// Limb capacity of the stack-allocated `Medium` tier.
const MEDIUM_LIMBS: usize = 4;

/// An arbitrary-precision signed integer with an inline word-sized fast
/// path.
///
/// See the [crate docs](crate) for why this exists. All arithmetic is
/// exact; operations never overflow (they promote to a heap
/// representation instead).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Int(Repr);

impl Default for Int {
    fn default() -> Self {
        Int::zero()
    }
}

/// Stack-allocated limb view of a word-sized magnitude (so mixed
/// small/big operations can reuse the limb algorithms without
/// allocating).
struct SmallLimbs {
    buf: [u64; 2],
    len: usize,
}

impl SmallLimbs {
    #[inline]
    fn of(m: u128) -> SmallLimbs {
        let lo = m as u64;
        let hi = (m >> 64) as u64;
        let len = if hi != 0 {
            2
        } else if lo != 0 {
            1
        } else {
            0
        };
        SmallLimbs { buf: [lo, hi], len }
    }

    #[inline]
    fn as_slice(&self) -> &[u64] {
        &self.buf[..self.len]
    }
}

#[inline]
fn sign_of_i128(v: i128) -> i8 {
    (v > 0) as i8 - (v < 0) as i8
}

impl Int {
    /// The integer 0.
    pub fn zero() -> Self {
        Int(Repr::Small(0))
    }

    /// The integer 1.
    pub fn one() -> Self {
        Int(Repr::Small(1))
    }

    #[inline]
    fn small(v: i128) -> Self {
        Int(Repr::Small(v))
    }

    /// The inline value, when this is word-sized.
    #[inline]
    fn as_small(&self) -> Option<i128> {
        match self.0 {
            Repr::Small(v) => Some(v),
            _ => None,
        }
    }

    /// True when the value is held in the inline machine-word
    /// representation (exposed so representation-boundary tests can
    /// assert promotion and demotion; not meaningful for callers
    /// otherwise — the representations are behaviorally identical).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Small(_))
    }

    /// True when the value is held in the fixed-width stack-allocated
    /// tier (2–4 limbs beyond the `i128` range). Like
    /// [`Int::is_inline`], only meaningful for representation tests.
    pub fn is_medium(&self) -> bool {
        matches!(self.0, Repr::Medium { .. })
    }

    /// Construct from a sign and a trimmed limb slice, picking the
    /// canonical tier for the magnitude's length.
    fn from_sign_limbs(sign: i8, limbs: &[u64]) -> Self {
        match limbs.len() {
            0 => Int::zero(),
            1 | 2 => {
                let m = (limbs[0] as u128) | ((*limbs.get(1).unwrap_or(&0) as u128) << 64);
                Int::from_sign_u128(sign, m)
            }
            3 | 4 => {
                debug_assert!(sign == 1 || sign == -1);
                let mut mag = [0u64; MEDIUM_LIMBS];
                mag[..limbs.len()].copy_from_slice(limbs);
                Int(Repr::Medium { sign, len: limbs.len() as u8, mag })
            }
            _ => {
                debug_assert!(sign == 1 || sign == -1);
                Int(Repr::Big { sign, mag: limbs.to_vec() })
            }
        }
    }

    /// Construct from a raw sign and magnitude, normalizing (trims high
    /// zero limbs, demotes to the stack tiers whenever the magnitude
    /// fits them).
    fn from_sign_mag(sign: i8, mut mag: Vec<u64>) -> Self {
        trim(&mut mag);
        if mag.len() > MEDIUM_LIMBS {
            debug_assert!(sign == 1 || sign == -1);
            return Int(Repr::Big { sign, mag });
        }
        Int::from_sign_limbs(sign, &mag)
    }

    /// Construct from a sign and a `u128` magnitude, demoting to the
    /// inline representation whenever the signed value fits `i128`.
    #[inline]
    fn from_sign_u128(sign: i8, m: u128) -> Self {
        if m == 0 {
            return Int::zero();
        }
        debug_assert!(sign == 1 || sign == -1);
        if sign > 0 {
            if m <= i128::MAX as u128 {
                return Int::small(m as i128);
            }
        } else if m <= I128_MIN_MAG {
            // `m as i128` wraps 2^127 to i128::MIN, whose negation is
            // itself — exactly the value we want.
            return Int::small((m as i128).wrapping_neg());
        }
        // Past the i128 range with a u128 magnitude: always two limbs.
        Int(Repr::Medium { sign, len: 2, mag: [m as u64, (m >> 64) as u64, 0, 0] })
    }

    /// Run `f` over the sign-magnitude view of this value, materializing
    /// small magnitudes on the stack.
    #[inline]
    fn with_view<R>(&self, f: impl FnOnce(i8, &[u64]) -> R) -> R {
        match &self.0 {
            Repr::Small(v) => {
                let limbs = SmallLimbs::of(v.unsigned_abs());
                f(sign_of_i128(*v), limbs.as_slice())
            }
            Repr::Medium { sign, len, mag } => f(*sign, &mag[..*len as usize]),
            Repr::Big { sign, mag } => f(*sign, mag),
        }
    }

    /// True iff this is 0.
    pub fn is_zero(&self) -> bool {
        matches!(self.0, Repr::Small(0))
    }

    /// True iff this is 1.
    pub fn is_one(&self) -> bool {
        matches!(self.0, Repr::Small(1))
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.signum() < 0
    }

    /// True iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.signum() > 0
    }

    /// The sign as -1 / 0 / +1.
    pub fn signum(&self) -> i8 {
        match &self.0 {
            Repr::Small(v) => sign_of_i128(*v),
            Repr::Medium { sign, .. } => *sign,
            Repr::Big { sign, .. } => *sign,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        match &self.0 {
            Repr::Small(v) => {
                if *v == 0 {
                    Int::zero()
                } else {
                    Int::from_sign_u128(1, v.unsigned_abs())
                }
            }
            Repr::Medium { len, mag, .. } => Int(Repr::Medium { sign: 1, len: *len, mag: *mag }),
            Repr::Big { mag, .. } => Int(Repr::Big { sign: 1, mag: mag.clone() }),
        }
    }

    /// Number of significant bits of the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match &self.0 {
            Repr::Small(v) => (128 - v.unsigned_abs().leading_zeros()) as u64,
            Repr::Medium { len, mag, .. } => {
                let l = *len as usize;
                (l as u64) * 64 - mag[l - 1].leading_zeros() as u64
            }
            Repr::Big { mag, .. } => match mag.last() {
                None => 0,
                Some(&hi) => (mag.len() as u64) * 64 - hi.leading_zeros() as u64,
            },
        }
    }

    /// True iff the magnitude is even.
    pub fn is_even(&self) -> bool {
        match &self.0 {
            Repr::Small(v) => v & 1 == 0,
            Repr::Medium { mag, .. } => mag[0] & 1 == 0,
            Repr::Big { mag, .. } => mag[0] & 1 == 0,
        }
    }

    /// Quotient and remainder of truncated division (`q` rounds toward
    /// zero; `r` has the sign of `self`, with `self == q*rhs + r` and
    /// `|r| < |rhs|`).
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &Int) -> (Int, Int) {
        assert!(!rhs.is_zero(), "Int division by zero");
        if let (Some(a), Some(b)) = (self.as_small(), rhs.as_small()) {
            // The single overflowing case is i128::MIN / -1 = 2^127.
            return match a.checked_div(b) {
                Some(q) => (Int::small(q), Int::small(a % b)),
                None => (Int::from_sign_u128(1, I128_MIN_MAG), Int::zero()),
            };
        }
        if self.is_zero() {
            return (Int::zero(), Int::zero());
        }
        self.with_view(|sa, ma| {
            rhs.with_view(|sb, mb| {
                let (q_mag, r_mag) = mag_div_rem(ma, mb);
                (Int::from_sign_mag(sa * sb, q_mag), Int::from_sign_mag(sa, r_mag))
            })
        })
    }

    /// Euclidean division: quotient rounded toward negative infinity.
    pub fn div_floor(&self, rhs: &Int) -> Int {
        let (q, r) = self.div_rem(rhs);
        if !r.is_zero() && (r.signum() * rhs.signum()) < 0 {
            q - Int::one()
        } else {
            q
        }
    }

    /// Ceiling division: quotient rounded toward positive infinity.
    pub fn div_ceil_int(&self, rhs: &Int) -> Int {
        let (q, r) = self.div_rem(rhs);
        if !r.is_zero() && (r.signum() * rhs.signum()) > 0 {
            q + Int::one()
        } else {
            q
        }
    }

    /// `self^exp` by binary exponentiation. `0^0 == 1`.
    pub fn pow(&self, exp: u32) -> Int {
        let mut base = self.clone();
        let mut exp = exp;
        let mut acc = Int::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Shift left by `n` bits (multiply by 2^n).
    pub fn shl(&self, n: u32) -> Int {
        match &self.0 {
            Repr::Small(0) => Int::zero(),
            Repr::Small(v) => {
                let m = v.unsigned_abs();
                if n <= m.leading_zeros() {
                    // The shifted magnitude still fits u128.
                    Int::from_sign_u128(sign_of_i128(*v), m << n)
                } else {
                    let limbs = SmallLimbs::of(m);
                    Int::from_sign_mag(sign_of_i128(*v), mag_shl(limbs.as_slice(), n as usize))
                }
            }
            _ => self.with_view(|sign, mag| Int::from_sign_mag(sign, mag_shl(mag, n as usize))),
        }
    }

    /// Shift the magnitude right by `n` bits, truncating toward zero.
    pub fn shr(&self, n: u32) -> Int {
        match &self.0 {
            Repr::Small(v) => {
                if n >= 128 {
                    return Int::zero();
                }
                Int::from_sign_u128(
                    if sign_of_i128(*v) == 0 { 1 } else { sign_of_i128(*v) },
                    v.unsigned_abs() >> n,
                )
            }
            _ => self.with_view(|sign, mag| Int::from_sign_mag(sign, mag_shr(mag, n as usize))),
        }
    }

    /// Lossy conversion to `f64`, correctly rounded to nearest-even;
    /// values beyond the finite `f64` range saturate to ±inf.
    pub fn to_f64(&self) -> f64 {
        match &self.0 {
            // `i128 as f64` rounds to nearest-even per the Rust spec.
            Repr::Small(v) => *v as f64,
            _ => self.with_view(|sign, mag| {
                let v = mag_to_f64(mag);
                if sign < 0 {
                    -v
                } else {
                    v
                }
            }),
        }
    }

    /// Checked conversion to `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        match self.0 {
            Repr::Small(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Checked conversion to `i128`.
    pub fn to_i128(&self) -> Option<i128> {
        self.as_small()
    }

    /// Checked conversion to `u64` (fails for negatives).
    pub fn to_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::Small(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Compare magnitudes only (ignoring sign).
    pub fn cmp_abs(&self, other: &Int) -> Ordering {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return a.unsigned_abs().cmp(&b.unsigned_abs());
        }
        // Mixed tiers can carry equal magnitudes at the 2^127 boundary
        // (`Small(i128::MIN)` vs a positive two-limb value), so compare
        // limbs rather than trusting tier rank.
        self.with_view(|_, ma| other.with_view(|_, mb| mag_cmp(ma, mb)))
    }
}

/// Correctly rounded (nearest-even) conversion of a little-endian limb
/// magnitude to `f64`, saturating to `f64::INFINITY` past the finite
/// range.
fn mag_to_f64(mag: &[u64]) -> f64 {
    let bits = match mag.last() {
        None => return 0.0,
        Some(&hi) => mag.len() as u64 * 64 - hi.leading_zeros() as u64,
    };
    if bits <= 64 {
        // `u64 as f64` rounds to nearest-even per the Rust spec.
        return mag[0] as f64;
    }
    if bits > 1024 {
        return f64::INFINITY;
    }
    // Pull the top 54 bits (53-bit mantissa + round bit) into one word
    // and fold everything below the window into a sticky bit.
    let shift = (bits - 54) as usize;
    let limb = shift / 64;
    let off = shift % 64;
    let mut top = mag[limb] >> off;
    if off != 0 {
        if let Some(&next) = mag.get(limb + 1) {
            top |= next << (64 - off);
        }
    }
    debug_assert_eq!(top >> 53, 1, "window must be led by the magnitude's msb");
    let mut sticky = mag[..limb].iter().any(|&l| l != 0);
    if off != 0 {
        sticky |= mag[limb] & ((1u64 << off) - 1) != 0;
    }
    let round = top & 1 == 1;
    let mut mant = top >> 1;
    if round && (sticky || mant & 1 == 1) {
        // Rounding 2^53 - 1 up makes 2^53: still exact in f64, and the
        // scaling below carries it into the next binade (or to +inf at
        // the very top — exactly IEEE overflow behavior).
        mant += 1;
    }
    // `shift + 1 <= 971`, so the power itself never overflows; the
    // product is exact or overflows to +inf (mant is a ≤ 54-bit
    // integer and the scale is a power of two).
    (mant as f64) * 2f64.powi(shift as i32 + 1)
}

// --- conversions -----------------------------------------------------------

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        Int::small(v as i128)
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        Int::small(v as i128)
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Self {
        Int::small(v as i128)
    }
}

impl From<usize> for Int {
    fn from(v: usize) -> Self {
        Int::small(v as i128)
    }
}

impl From<i128> for Int {
    fn from(v: i128) -> Self {
        Int::small(v)
    }
}

impl From<u128> for Int {
    fn from(v: u128) -> Self {
        if v == 0 {
            Int::zero()
        } else {
            Int::from_sign_u128(1, v)
        }
    }
}

/// Error when parsing an [`Int`] from a decimal string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError(pub(crate) String);

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big-integer literal: {}", self.0)
    }
}

impl std::error::Error for ParseIntError {}

impl FromStr for Int {
    type Err = ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Word-sized fast path: `i128::from_str` accepts exactly the
        // grammar below (optional sign, then digits) and fails on
        // overflow, in which case we fall through to the chunked path.
        if let Ok(v) = s.parse::<i128>() {
            return Ok(Int::small(v));
        }
        let (sign, digits) = match s.as_bytes().first() {
            Some(b'-') => (-1i8, &s[1..]),
            Some(b'+') => (1, &s[1..]),
            _ => (1, s),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseIntError(s.to_owned()));
        }
        // Consume 19 decimal digits (one u64-sized chunk) per step.
        let mut acc = Int::zero();
        let chunk_base = Int::from(10_000_000_000_000_000_000u64); // 10^19
        let bytes = digits.as_bytes();
        let mut idx = 0;
        let first_len = {
            let rem = bytes.len() % 19;
            if rem == 0 {
                19.min(bytes.len())
            } else {
                rem
            }
        };
        while idx < bytes.len() {
            let len = if idx == 0 { first_len } else { 19 };
            let chunk = &digits[idx..idx + len];
            let val: u64 = chunk.parse().expect("ascii digits");
            if idx == 0 {
                acc = Int::from(val);
            } else {
                acc = &(&acc * &chunk_base) + &Int::from(val);
            }
            idx += len;
        }
        if sign < 0 {
            acc = -acc;
        }
        Ok(acc)
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_small() {
            return f.pad_integral(v >= 0, "", &v.unsigned_abs().to_string());
        }
        self.with_view(|sign, mag| {
            // Repeatedly divide by 10^19, collecting low-order chunks.
            let mut chunks: Vec<u64> = Vec::new();
            let mut mag = mag.to_vec();
            while !mag.is_empty() {
                let rem = mag_div_single_in_place(&mut mag, 10_000_000_000_000_000_000u64);
                trim(&mut mag);
                chunks.push(rem);
            }
            let mut s = String::with_capacity(chunks.len() * 19);
            for (i, chunk) in chunks.iter().rev().enumerate() {
                if i == 0 {
                    s.push_str(&chunk.to_string());
                } else {
                    s.push_str(&format!("{chunk:019}"));
                }
            }
            f.pad_integral(sign >= 0, "", &s)
        })
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

// --- ordering ---------------------------------------------------------------

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return a.cmp(&b);
        }
        match self.signum().cmp(&other.signum()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        // Same sign, at least one operand beyond the inline range:
        // magnitude decides, reversed for negatives.
        let mag_ord = self.cmp_abs(other);
        if self.signum() >= 0 {
            mag_ord
        } else {
            mag_ord.reverse()
        }
    }
}

// --- arithmetic on references (canonical impls) ------------------------------

/// Signed addition over sign-magnitude views (the mixed / big-big path).
fn add_views(sa: i8, ma: &[u64], sb: i8, mb: &[u64]) -> Int {
    if sa == 0 {
        return Int::from_sign_mag(sb, mb.to_vec());
    }
    if sb == 0 {
        return Int::from_sign_mag(sa, ma.to_vec());
    }
    if sa == sb {
        Int::from_sign_mag(sa, mag_add(ma, mb))
    } else {
        match mag_cmp(ma, mb) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int::from_sign_mag(sa, mag_sub(ma, mb)),
            Ordering::Less => Int::from_sign_mag(sb, mag_sub(mb, ma)),
        }
    }
}

impl<'b> Add<&'b Int> for &Int {
    type Output = Int;
    fn add(self, rhs: &'b Int) -> Int {
        if let (Some(a), Some(b)) = (self.as_small(), rhs.as_small()) {
            if let Some(s) = a.checked_add(b) {
                return Int::small(s);
            }
            // Overflow ⇒ same signs; the magnitude is |a| + |b| ≤ 2^128.
            let (m, carry) = a.unsigned_abs().overflowing_add(b.unsigned_abs());
            let sign = if a < 0 { -1 } else { 1 };
            if carry {
                return Int(Repr::Medium { sign, len: 3, mag: [m as u64, (m >> 64) as u64, 1, 0] });
            }
            return Int::from_sign_u128(sign, m);
        }
        self.with_view(|sa, ma| rhs.with_view(|sb, mb| add_views(sa, ma, sb, mb)))
    }
}

impl<'b> Sub<&'b Int> for &Int {
    type Output = Int;
    fn sub(self, rhs: &'b Int) -> Int {
        if let (Some(a), Some(b)) = (self.as_small(), rhs.as_small()) {
            if let Some(d) = a.checked_sub(b) {
                return Int::small(d);
            }
            // Overflow ⇒ opposite signs; the magnitude is |a| + |b|.
            let (m, carry) = a.unsigned_abs().overflowing_add(b.unsigned_abs());
            let sign = if a < 0 { -1 } else { 1 };
            if carry {
                return Int(Repr::Medium { sign, len: 3, mag: [m as u64, (m >> 64) as u64, 1, 0] });
            }
            return Int::from_sign_u128(sign, m);
        }
        self.with_view(|sa, ma| rhs.with_view(|sb, mb| add_views(sa, ma, -sb, mb)))
    }
}

impl<'b> Mul<&'b Int> for &Int {
    type Output = Int;
    fn mul(self, rhs: &'b Int) -> Int {
        if let (Some(a), Some(b)) = (self.as_small(), rhs.as_small()) {
            if let Some(p) = a.checked_mul(b) {
                return Int::small(p);
            }
            let sign = sign_of_i128(a) * sign_of_i128(b);
            let mag = mul_u128_full(a.unsigned_abs(), b.unsigned_abs());
            return Int::from_sign_mag(sign, mag);
        }
        if self.is_zero() || rhs.is_zero() {
            return Int::zero();
        }
        self.with_view(|sa, ma| {
            rhs.with_view(|sb, mb| Int::from_sign_mag(sa * sb, mag_mul(ma, mb)))
        })
    }
}

impl<'b> Div<&'b Int> for &Int {
    type Output = Int;
    fn div(self, rhs: &'b Int) -> Int {
        self.div_rem(rhs).0
    }
}

impl<'b> Rem<&'b Int> for &Int {
    type Output = Int;
    fn rem(self, rhs: &'b Int) -> Int {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<Int> for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                (&self).$method(&rhs)
            }
        }
        impl<'b> $trait<&'b Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &'b Int) -> Int {
                (&self).$method(rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        match self.0 {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => Int::small(n),
                None => Int::from_sign_u128(1, I128_MIN_MAG),
            },
            // Canonicalize: magnitude 2^127 demotes to Small(i128::MIN)
            // exactly when the sign flips to negative.
            Repr::Medium { sign, len, mag } => Int::from_sign_limbs(-sign, &mag[..len as usize]),
            Repr::Big { sign, mag } => Int::from_sign_mag(-sign, mag),
        }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        self.clone().neg()
    }
}

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, rhs: &Int) {
        *self = &*self * rhs;
    }
}

impl std::iter::Sum for Int {
    fn sum<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::zero(), |a, b| a + b)
    }
}

// --- gcd ---------------------------------------------------------------------

/// Stein's binary GCD on machine words: shift/subtract only, no
/// division. The workhorse of `Ratio` normalization on the fast path.
pub(crate) fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            break;
        }
    }
    a << shift
}

/// Gcd on magnitudes; result is non-negative. Word-sized operands take
/// the binary-GCD fast path; big operands run Euclid until both
/// remainders have demoted into word range (which one division step
/// usually achieves), then finish binary.
pub(crate) fn gcd(a: &Int, b: &Int) -> Int {
    let mut a = a.abs();
    let mut b = b.abs();
    loop {
        if let (Some(x), Some(y)) = (a.as_small(), b.as_small()) {
            return Int::from_u128_mag(gcd_u128(x.unsigned_abs(), y.unsigned_abs()));
        }
        if b.is_zero() {
            return a;
        }
        let r = &a % &b;
        a = b;
        b = r;
    }
}

impl Int {
    /// Non-negative value from a raw `u128` magnitude (demoting).
    #[inline]
    fn from_u128_mag(m: u128) -> Int {
        if m == 0 {
            Int::zero()
        } else {
            Int::from_sign_u128(1, m)
        }
    }
}

// --- magnitude (unsigned little-endian limb vector) helpers -------------------

fn trim(mag: &mut Vec<u64>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in long.iter().enumerate() {
        let s = limb as u128 + *short.get(i).unwrap_or(&0) as u128 + carry as u128;
        out.push(s as u64);
        carry = (s >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Requires `a >= b` (as magnitudes).
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &ai) in a.iter().enumerate() {
        let bi = *b.get(i).unwrap_or(&0);
        let (d, b1) = ai.overflowing_sub(bi);
        let (d, b2) = d.overflowing_sub(borrow);
        out.push(d);
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

/// Full 256-bit product of two `u128` magnitudes, as limbs.
fn mul_u128_full(a: u128, b: u128) -> Vec<u64> {
    let (a0, a1) = (a as u64 as u128, (a >> 64) as u64 as u128);
    let (b0, b1) = (b as u64 as u128, (b >> 64) as u64 as u128);
    // Partial products: a·b = a1b1·2^128 + (a1b0 + a0b1)·2^64 + a0b0.
    let ll = a0 * b0;
    let lh = a0 * b1;
    let hl = a1 * b0;
    let hh = a1 * b1;
    let mut out = vec![ll as u64, (ll >> 64) as u64, hh as u64, (hh >> 64) as u64];
    let mut add_shifted = |p: u128| {
        let mut carry = 0u64;
        for (i, part) in [p as u64, (p >> 64) as u64].into_iter().enumerate() {
            let s = out[1 + i] as u128 + part as u128 + carry as u128;
            out[1 + i] = s as u64;
            carry = (s >> 64) as u64;
        }
        let mut k = 3;
        while carry != 0 {
            let s = out[k] as u128 + carry as u128;
            out[k] = s as u64;
            carry = (s >> 64) as u64;
            k += 1;
        }
    };
    add_shifted(lh);
    add_shifted(hl);
    trim(&mut out);
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) >= KARATSUBA_THRESHOLD {
        karatsuba_mul(a, b)
    } else {
        schoolbook_mul(a, b)
    }
}

fn schoolbook_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

/// Karatsuba multiplication: splits at `m = min(len)/2`-ish and recurses.
fn karatsuba_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let m = a.len().min(b.len()) / 2;
    debug_assert!(m >= 1);
    let (a0, a1) = a.split_at(m);
    let (b0, b1) = b.split_at(m);
    // z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)*(b0+b1) - z0 - z2
    let z0 = mag_mul_trimmed(a0, b0);
    let z2 = mag_mul_trimmed(a1, b1);
    let a01 = mag_add(&trimmed(a0), &trimmed(a1));
    let b01 = mag_add(&trimmed(b0), &trimmed(b1));
    let mut z1 = mag_mul(&a01, &b01);
    z1 = mag_sub(&z1, &z0);
    z1 = mag_sub(&z1, &z2);
    // result = z0 + z1 << 64m + z2 << 128m
    let mut out = vec![0u64; a.len() + b.len()];
    add_into(&mut out, &z0, 0);
    add_into(&mut out, &z1, m);
    add_into(&mut out, &z2, 2 * m);
    trim(&mut out);
    out
}

fn trimmed(a: &[u64]) -> Vec<u64> {
    let mut v = a.to_vec();
    trim(&mut v);
    v
}

fn mag_mul_trimmed(a: &[u64], b: &[u64]) -> Vec<u64> {
    let a = trimmed(a);
    let b = trimmed(b);
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    mag_mul(&a, &b)
}

/// `out[offset..] += addend` with carry propagation.
fn add_into(out: &mut [u64], addend: &[u64], offset: usize) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < addend.len() || carry != 0 {
        let a = *addend.get(i).unwrap_or(&0);
        let s = out[offset + i] as u128 + a as u128 + carry as u128;
        out[offset + i] = s as u64;
        carry = (s >> 64) as u64;
        i += 1;
    }
}

fn mag_shl(mag: &[u64], n: usize) -> Vec<u64> {
    let limb_shift = n / 64;
    let bit_shift = n % 64;
    let mut out = vec![0u64; mag.len() + limb_shift + 1];
    for (i, &l) in mag.iter().enumerate() {
        if bit_shift == 0 {
            out[i + limb_shift] |= l;
        } else {
            out[i + limb_shift] |= l << bit_shift;
            out[i + limb_shift + 1] |= l >> (64 - bit_shift);
        }
    }
    trim(&mut out);
    out
}

fn mag_shr(mag: &[u64], n: usize) -> Vec<u64> {
    let limb_shift = n / 64;
    let bit_shift = n % 64;
    if limb_shift >= mag.len() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(mag.len() - limb_shift);
    for i in limb_shift..mag.len() {
        let mut l = mag[i] >> bit_shift;
        if bit_shift > 0 && i + 1 < mag.len() {
            l |= mag[i + 1] << (64 - bit_shift);
        }
        out.push(l);
    }
    trim(&mut out);
    out
}

/// Divide magnitude by a single limb in place; returns the remainder.
fn mag_div_single_in_place(mag: &mut [u64], d: u64) -> u64 {
    debug_assert!(d != 0);
    let mut rem = 0u128;
    for l in mag.iter_mut().rev() {
        let cur = (rem << 64) | *l as u128;
        *l = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    rem as u64
}

/// Knuth Algorithm D long division on magnitudes. Returns `(quotient,
/// remainder)`.
fn mag_div_rem(u: &[u64], v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(!v.is_empty());
    match mag_cmp(u, v) {
        Ordering::Less => return (Vec::new(), u.to_vec()),
        Ordering::Equal => return (vec![1], Vec::new()),
        Ordering::Greater => {}
    }
    if v.len() == 1 {
        let mut q = u.to_vec();
        let rem = mag_div_single_in_place(&mut q, v[0]);
        trim(&mut q);
        let r = if rem == 0 { Vec::new() } else { vec![rem] };
        return (q, r);
    }

    // Normalize: shift so the divisor's top bit is set.
    let shift = v.last().unwrap().leading_zeros() as usize;
    let vn = mag_shl(v, shift);
    let mut un = mag_shl(u, shift);
    debug_assert_eq!(vn.len(), v.len());
    un.resize(u.len() + 1, 0); // ensure an extra high limb

    let n = vn.len();
    let m = un.len() - n - 1; // quotient has m+1 limbs
    let b: u128 = 1 << 64;
    let d1 = vn[n - 1] as u128;
    let d0 = vn[n - 2] as u128;

    let mut q = vec![0u64; m + 1];
    for j in (0..=m).rev() {
        let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = num / d1;
        let mut rhat = num % d1;
        loop {
            if qhat >= b || qhat * d0 > ((rhat << 64) | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += d1;
                if rhat < b {
                    continue;
                }
            }
            break;
        }

        // Multiply and subtract: un[j..j+n+1] -= qhat * vn.
        let mut carry: u128 = 0;
        let mut borrow: u64 = 0;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let (d, b1) = un[j + i].overflowing_sub(p as u64);
            let (d, b2) = d.overflowing_sub(borrow);
            un[j + i] = d;
            borrow = b1 as u64 + b2 as u64;
        }
        let (d, b1) = un[j + n].overflowing_sub(carry as u64);
        let (d, b2) = d.overflowing_sub(borrow);
        un[j + n] = d;

        if b1 || b2 {
            // qhat was one too large: add the divisor back.
            qhat -= 1;
            let mut c = 0u64;
            for i in 0..n {
                let s = un[j + i] as u128 + vn[i] as u128 + c as u128;
                un[j + i] = s as u64;
                c = (s >> 64) as u64;
            }
            un[j + n] = un[j + n].wrapping_add(c);
        }
        q[j] = qhat as u64;
    }

    trim(&mut q);
    let mut r = mag_shr(&un[..n], shift);
    trim(&mut r);
    (q, r)
}

// --- serde (decimal strings: robust and readable) -----------------------------

#[cfg(feature = "serde")]
impl serde::Serialize for Int {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Int {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

// --- tests --------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn int(v: i128) -> Int {
        Int::from(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(Int::zero().is_zero());
        assert!(Int::one().is_one());
        assert_eq!(Int::zero(), Int::from(0i64));
        assert_eq!(Int::zero().to_string(), "0");
        assert_eq!((-Int::one()).to_string(), "-1");
        assert_eq!(Int::zero().bits(), 0);
        assert_eq!(Int::one().bits(), 1);
        assert_eq!(Int::from(256u64).bits(), 9);
    }

    #[test]
    fn from_i64_extremes() {
        assert_eq!(Int::from(i64::MIN).to_string(), i64::MIN.to_string());
        assert_eq!(Int::from(i64::MAX).to_string(), i64::MAX.to_string());
        assert_eq!(Int::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(Int::from(i64::MAX).to_i64(), Some(i64::MAX));
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(int(2) + int(3), int(5));
        assert_eq!(int(-2) + int(3), int(1));
        assert_eq!(int(2) + int(-3), int(-1));
        assert_eq!(int(-2) + int(-3), int(-5));
        assert_eq!(int(7) - int(7), Int::zero());
        assert_eq!(int(0) - int(7), int(-7));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(int(6) * int(-7), int(-42));
        assert_eq!(int(-6) * int(-7), int(42));
        assert_eq!(int(0) * int(-7), Int::zero());
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        assert_eq!(int(7).div_rem(&int(2)), (int(3), int(1)));
        assert_eq!(int(-7).div_rem(&int(2)), (int(-3), int(-1)));
        assert_eq!(int(7).div_rem(&int(-2)), (int(-3), int(1)));
        assert_eq!(int(-7).div_rem(&int(-2)), (int(3), int(-1)));
    }

    #[test]
    fn div_floor_and_ceil() {
        assert_eq!(int(7).div_floor(&int(2)), int(3));
        assert_eq!(int(-7).div_floor(&int(2)), int(-4));
        assert_eq!(int(7).div_ceil_int(&int(2)), int(4));
        assert_eq!(int(-7).div_ceil_int(&int(2)), int(-3));
        assert_eq!(int(8).div_floor(&int(2)), int(4));
        assert_eq!(int(8).div_ceil_int(&int(2)), int(4));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = int(5).div_rem(&Int::zero());
    }

    #[test]
    fn pow_small() {
        assert_eq!(int(3).pow(0), Int::one());
        assert_eq!(int(3).pow(4), int(81));
        assert_eq!(int(-2).pow(5), int(-32));
        assert_eq!(int(10).pow(19).to_string(), "10000000000000000000");
    }

    #[test]
    fn display_and_parse_roundtrip_large() {
        let s = "123456789012345678901234567890123456789";
        let v: Int = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        let neg: Int = format!("-{s}").parse().unwrap();
        assert_eq!(neg.to_string(), format!("-{s}"));
        assert!(neg < Int::zero());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Int>().is_err());
        assert!("-".parse::<Int>().is_err());
        assert!("12a".parse::<Int>().is_err());
        assert!("1 2".parse::<Int>().is_err());
    }

    #[test]
    fn ordering_mixed_signs() {
        assert!(int(-5) < int(3));
        assert!(int(3) < int(5));
        assert!(int(-3) > int(-5));
        assert!(Int::zero() > int(-1));
        assert!(Int::zero() < int(1));
    }

    #[test]
    fn shifts() {
        assert_eq!(int(1).shl(70).shr(70), int(1));
        assert_eq!(int(5).shl(3), int(40));
        assert_eq!(int(40).shr(3), int(5));
        assert_eq!(int(41).shr(3), int(5)); // truncates
        assert_eq!(int(-40).shr(3), int(-5));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(gcd(&int(12), &int(18)), int(6));
        assert_eq!(gcd(&int(-12), &int(18)), int(6));
        assert_eq!(gcd(&int(0), &int(5)), int(5));
        assert_eq!(gcd(&int(0), &int(0)), Int::zero());
        assert_eq!(gcd(&int(7), &int(13)), int(1));
    }

    #[test]
    fn gcd_big_operands_reduce() {
        let a = int(6) * Int::from(10i64).pow(40);
        let b = int(9) * Int::from(10i64).pow(40);
        assert_eq!(gcd(&a, &b), int(3) * Int::from(10i64).pow(40));
        // Mixed big/small still lands on the word-sized gcd.
        assert_eq!(gcd(&a, &int(9)), int(3));
    }

    #[test]
    fn to_f64_small_and_huge() {
        assert_eq!(int(12345).to_f64(), 12345.0);
        assert_eq!(int(-12345).to_f64(), -12345.0);
        let big = Int::from(10i64).pow(40);
        let f = big.to_f64();
        assert!((f - 1e40).abs() / 1e40 < 1e-12);
    }

    #[test]
    fn to_f64_rounds_to_nearest_even() {
        // msb at bit 160 → the 53-bit mantissa window covers bits
        // 160..=108, the round bit sits at 107.
        let base = Int::one().shl(160);
        let half = Int::one().shl(107);
        let ulp = Int::one().shl(108);
        // Exact tie on an even mantissa: rounds down.
        assert_eq!((&base + &half).to_f64(), base.to_f64());
        // One past the tie (sticky bit set): rounds up a full ulp.
        assert_eq!((&(&base + &half) + &Int::one()).to_f64(), (&base + &ulp).to_f64());
        assert_eq!((&base + &ulp).to_f64(), 2f64.powi(160) + 2f64.powi(108));
        // Exact tie on an odd mantissa: rounds up to the even neighbor.
        let odd_tie = &(&base + &ulp) + &half;
        assert_eq!(odd_tie.to_f64(), (&base + &Int::one().shl(109)).to_f64());
        // Negative values mirror exactly.
        assert_eq!((-(&base + &half)).to_f64(), -(base.to_f64()));
    }

    #[test]
    fn to_f64_saturates_at_f64_max_scale() {
        // The largest finite double, (2^53 - 1)·2^971, converts exactly.
        let max = (&Int::one().shl(53) - &Int::one()).shl(971);
        assert_eq!(max.to_f64(), f64::MAX);
        assert_eq!((-max.clone()).to_f64(), f64::MIN);
        // Halfway into the next binade overflows to +inf (IEEE round-to-
        // nearest overflow), as does anything farther out.
        let halfway = (&Int::one().shl(54) - &Int::one()).shl(970);
        assert_eq!(halfway.to_f64(), f64::INFINITY);
        assert_eq!(Int::one().shl(1100).to_f64(), f64::INFINITY);
        assert_eq!((-Int::one().shl(1100)).to_f64(), f64::NEG_INFINITY);
    }

    #[test]
    fn medium_tier_boundaries() {
        // 2^127 (= |i128::MIN|) is the smallest non-inline magnitude and
        // lands on the stack tier; negating it demotes back to inline.
        let m = int(i128::MIN).abs();
        assert!(!m.is_inline() && m.is_medium());
        assert!((-m).is_inline());
        // Four limbs stay Medium; the first five-limb value is heap Big.
        let four = Int::one().shl(255);
        assert!(four.is_medium());
        let five = Int::one().shl(256);
        assert!(!five.is_medium() && !five.is_inline());
        // Arithmetic across the limb-count boundary re-canonicalizes.
        let back = &five / &int(2);
        assert!(back.is_medium());
        assert_eq!(back, four);
        let carry = &int(i128::MIN) + &int(i128::MIN);
        assert!(carry.is_medium(), "128-bit carry path must stay on the stack");
        assert_eq!(&carry - &int(i128::MIN), int(i128::MIN));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands big enough to trip the Karatsuba path.
        let mut a_mag = Vec::new();
        let mut b_mag = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..(KARATSUBA_THRESHOLD * 2 + 3) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            a_mag.push(x);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            b_mag.push(x);
        }
        let kar = karatsuba_mul(&a_mag, &b_mag);
        let sch = schoolbook_mul(&a_mag, &b_mag);
        assert_eq!(kar, sch);
    }

    #[test]
    fn division_identity_large() {
        let a: Int = "987654321098765432109876543210987654321098765432109".parse().unwrap();
        let b: Int = "123456789012345678901".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r.cmp_abs(&b) == Ordering::Less);
    }

    #[test]
    fn division_algorithm_d_addback_path() {
        // Crafted operand pattern known to exercise the add-back branch:
        // divisor with max-limb prefix.
        let u = Int::from_sign_mag(1, vec![0, 0, 0x8000000000000000, 0x7fffffffffffffff]);
        let v = Int::from_sign_mag(1, vec![u64::MAX, 0x8000000000000000]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r.cmp_abs(&v) == Ordering::Less);
    }

    #[test]
    fn promotion_and_demotion_at_i128_boundaries() {
        let max = int(i128::MAX);
        let min = int(i128::MIN);
        assert!(max.is_inline() && min.is_inline());

        // One past the boundary promotes; stepping back demotes.
        let over = &max + &Int::one();
        assert!(!over.is_inline());
        assert_eq!(over.to_string(), "170141183460469231731687303715884105728");
        let back = &over - &Int::one();
        assert!(back.is_inline());
        assert_eq!(back, max);

        let under = &min - &Int::one();
        assert!(!under.is_inline());
        assert_eq!(under.to_string(), "-170141183460469231731687303715884105729");
        let back = &under + &Int::one();
        assert!(back.is_inline());
        assert_eq!(back, min);

        // The asymmetric corner: |i128::MIN| fits the small repr only
        // as i128::MIN itself; its negation must stay inline.
        let neg_min = -min.clone();
        assert!(!neg_min.is_inline(), "2^127 exceeds i128::MAX");
        assert_eq!((-neg_min.clone()).to_i128(), Some(i128::MIN));
        assert!((-neg_min).is_inline());

        // i128::MIN / -1 is the one overflowing small division.
        let (q, r) = min.div_rem(&int(-1));
        assert_eq!(q.to_string(), "170141183460469231731687303715884105728");
        assert!(r.is_zero());
    }

    #[test]
    fn small_overflow_carry_edges() {
        // |a| + |b| == 2^128 exactly: the carry limb path.
        let a = int(i128::MIN);
        let sum = &a + &a;
        assert_eq!(sum.to_string(), "-340282366920938463463374607431768211456");
        assert_eq!(&sum - &a, a);
        // Largest positive doubling.
        let b = int(i128::MAX);
        let sum = &b + &b;
        assert_eq!(sum.to_string(), "340282366920938463463374607431768211454");
        assert_eq!(&sum - &b, b);
    }

    #[test]
    fn small_mul_overflow_matches_decimal() {
        let a = int(i128::MAX);
        let p = &a * &a;
        assert!(!p.is_inline());
        assert_eq!(
            p.to_string(),
            "28948022309329048855892746252171976962977213799489202546401021394546514198529"
        );
        assert_eq!(&p / &a, a);
        let m = int(i128::MIN);
        let p = &m * &m;
        assert_eq!(p, Int::one().shl(254));
    }

    #[test]
    fn hash_eq_consistency_across_representations() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Int| {
            let mut hasher = DefaultHasher::new();
            v.hash(&mut hasher);
            hasher.finish()
        };
        // The same value reached via a promote/demote round trip must
        // hash identically to the directly constructed one.
        for v in [0i128, 1, -1, i64::MIN as i128, i64::MAX as i128, i128::MAX, i128::MIN] {
            let direct = int(v);
            let round_trip = &(&int(v) + &int(i128::MAX)) - &int(i128::MAX);
            assert_eq!(direct, round_trip, "{v}");
            assert_eq!(h(&direct), h(&round_trip), "{v}");
            let shifted = int(v).shl(130).shr(130);
            // Truncating shr loses low bits only for negatives rounded
            // toward zero — shl/shr is exact, so this must round-trip.
            assert_eq!(direct, shifted, "{v}");
            assert_eq!(h(&direct), h(&shifted), "{v}");
        }
    }

    proptest! {
        #[test]
        fn prop_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let r = int(a as i128) + int(b as i128);
            prop_assert_eq!(r, int(a as i128 + b as i128));
        }

        #[test]
        fn prop_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let r = int(a as i128) * int(b as i128);
            prop_assert_eq!(r, int(a as i128 * b as i128));
        }

        #[test]
        fn prop_div_rem_matches_i128(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
            let (q, r) = int(a as i128).div_rem(&int(b as i128));
            prop_assert_eq!(q, int(a as i128 / b as i128));
            prop_assert_eq!(r, int(a as i128 % b as i128));
        }

        #[test]
        fn prop_div_rem_identity_big(
            a in proptest::collection::vec(any::<u64>(), 1..8),
            b in proptest::collection::vec(any::<u64>(), 1..5),
        ) {
            let a = Int::from_sign_mag(1, a);
            let b = Int::from_sign_mag(1, b);
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(&(&q * &b) + &r, a);
            prop_assert!(r.cmp_abs(&b) == Ordering::Less);
            prop_assert!(!r.is_negative());
        }

        #[test]
        fn prop_display_parse_roundtrip(
            mag in proptest::collection::vec(any::<u64>(), 0..6),
            neg in any::<bool>(),
        ) {
            let mut v = Int::from_sign_mag(1, mag);
            if neg { v = -v; }
            let s = v.to_string();
            let back: Int = s.parse().unwrap();
            prop_assert_eq!(back, v);
        }

        #[test]
        fn prop_mul_karatsuba_consistency(
            a in proptest::collection::vec(any::<u64>(), 64..80),
            b in proptest::collection::vec(any::<u64>(), 64..80),
        ) {
            let mut a = a; trim(&mut a);
            let mut b = b; trim(&mut b);
            prop_assume!(!a.is_empty() && !b.is_empty());
            prop_assert_eq!(mag_mul(&a, &b), schoolbook_mul(&a, &b));
        }

        #[test]
        fn prop_mul_u128_full_matches_schoolbook(a in any::<u128>(), b in any::<u128>()) {
            prop_assume!(a != 0 && b != 0);
            let la = SmallLimbs::of(a);
            let lb = SmallLimbs::of(b);
            prop_assert_eq!(mul_u128_full(a, b), schoolbook_mul(la.as_slice(), lb.as_slice()));
        }

        #[test]
        fn prop_gcd_divides_both(a in any::<i64>(), b in any::<i64>()) {
            let g = gcd(&int(a as i128), &int(b as i128));
            if !g.is_zero() {
                prop_assert!((int(a as i128) % &g).is_zero());
                prop_assert!((int(b as i128) % &g).is_zero());
            } else {
                prop_assert_eq!(a, 0);
                prop_assert_eq!(b, 0);
            }
        }

        #[test]
        fn prop_binary_gcd_matches_euclid(a in any::<u128>(), b in any::<u128>()) {
            let euclid = {
                let (mut a, mut b) = (a, b);
                while b != 0 {
                    let r = a % b;
                    a = b;
                    b = r;
                }
                a
            };
            prop_assert_eq!(gcd_u128(a, b), euclid);
        }

        #[test]
        fn prop_shl_shr_roundtrip(mag in proptest::collection::vec(any::<u64>(), 1..5), n in 0u32..200) {
            let v = Int::from_sign_mag(1, mag);
            prop_assume!(!v.is_zero());
            prop_assert_eq!(v.shl(n).shr(n), v);
        }

        #[test]
        fn prop_canonical_form_is_invariant(a in any::<i128>(), b in any::<i128>()) {
            // Any op result in the i128 range must be inline, and any
            // outside must not be — the representation is a function of
            // the value alone.
            let x = int(a);
            let y = int(b);
            for v in [&x + &y, &x - &y, &x * &y, -&x] {
                let in_range = v.to_string().parse::<i128>().is_ok();
                prop_assert_eq!(v.is_inline(), in_range, "{}", v);
            }
        }
    }
}
