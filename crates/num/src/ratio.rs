//! Exact rational numbers over [`Int`].
//!
//! Invariants maintained by every constructor and operation:
//! * the denominator is strictly positive,
//! * numerator and denominator are coprime,
//! * zero is represented as `0/1`.

use crate::int::Int;
use crate::int::ParseIntError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number (always normalized).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: Int,
    den: Int,
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::zero()
    }
}

impl Ratio {
    /// The rational 0.
    pub fn zero() -> Self {
        Ratio { num: Int::zero(), den: Int::one() }
    }

    /// The rational 1.
    pub fn one() -> Self {
        Ratio { num: Int::one(), den: Int::one() }
    }

    /// Construct an already-normalized rational without running gcd.
    ///
    /// Callers must guarantee the invariants (positive denominator,
    /// coprime parts, zero as `0/1`); debug builds verify them.
    #[inline]
    fn raw(num: Int, den: Int) -> Self {
        debug_assert!(den.is_positive(), "Ratio::raw: non-positive denominator");
        debug_assert!(
            crate::gcd(&num, &den).is_one() || num.is_zero(),
            "Ratio::raw: non-coprime parts"
        );
        debug_assert!(!num.is_zero() || den.is_one(), "Ratio::raw: zero not 0/1");
        Ratio { num, den }
    }

    /// Construct `num/den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: Int, den: Int) -> Self {
        assert!(!den.is_zero(), "Ratio with zero denominator");
        if num.is_zero() {
            return Ratio::zero();
        }
        // Integer fast path: nothing to reduce when the denominator is 1.
        if den.is_one() {
            return Ratio::raw(num, den);
        }
        let g = crate::gcd(&num, &den);
        let mut num = &num / &g;
        let mut den = &den / &g;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Ratio { num, den }
    }

    /// An integer as a rational.
    pub fn from_int(v: Int) -> Self {
        Ratio { num: v, den: Int::one() }
    }

    /// An `i64` as a rational.
    pub fn from_i64(v: i64) -> Self {
        Ratio::from_int(Int::from(v))
    }

    /// `a/b` from machine integers.
    ///
    /// # Panics
    /// Panics if `b == 0`.
    pub fn from_frac(a: i64, b: i64) -> Self {
        Ratio::new(Int::from(a), Int::from(b))
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff the denominator is 1.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// True iff the value is exactly 1.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Sign as -1/0/+1.
    pub fn signum(&self) -> i8 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Ratio {
        Ratio { num: self.num.abs(), den: self.den.clone() }
    }

    /// Largest integer `≤ self`.
    pub fn floor(&self) -> Int {
        self.num.div_floor(&self.den)
    }

    /// Smallest integer `≥ self`.
    pub fn ceil(&self) -> Int {
        self.num.div_ceil_int(&self.den)
    }

    /// Fractional part `self - floor(self)` (in `[0, 1)`).
    pub fn fract(&self) -> Ratio {
        self - &Ratio::from_int(self.floor())
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Ratio {
        assert!(!self.is_zero(), "Ratio::recip of zero");
        // num and den are already coprime, so the reciprocal is a sign-
        // adjusted swap — no gcd needed.
        if self.num.is_negative() {
            Ratio::raw(-self.den.clone(), self.num.abs())
        } else {
            Ratio::raw(self.den.clone(), self.num.clone())
        }
    }

    /// Lossy conversion to `f64`.
    ///
    /// Operands too large for the finite `f64` range are each shifted
    /// down to ~600 significant bits (with [`Int::to_f64`] rounding the
    /// rest to nearest-even) and the *net* power of two is re-applied at
    /// the end, so huge numerators/denominators of very different sizes
    /// (as produced by long exact simplex runs) keep their true ratio
    /// instead of inheriting a shared-shift truncation. Values beyond
    /// the `f64` range saturate to ±inf / ±0.
    pub fn to_f64(&self) -> f64 {
        let nb = self.num.bits();
        let db = self.den.bits();
        if nb <= 1000 && db <= 1000 {
            // Both operands convert to finite doubles directly; one
            // correctly rounded division does the rest.
            return self.num.to_f64() / self.den.to_f64();
        }
        // Keep ~600 bits of each operand (any error is ~2^-600 relative,
        // far below f64 resolution) and track the scale separately.
        let ns = nb.saturating_sub(600);
        let ds = db.saturating_sub(600);
        let q = self.num.shr(ns as u32).to_f64() / self.den.shr(ds as u32).to_f64();
        scale_by_pow2(q, ns as i64 - ds as i64)
    }

    /// The smaller of two rationals (by value).
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals (by value).
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `self^exp` for a (possibly negative) machine exponent.
    ///
    /// # Panics
    /// Panics on `0^negative`.
    pub fn pow(&self, exp: i32) -> Ratio {
        if exp >= 0 {
            Ratio { num: self.num.pow(exp as u32), den: self.den.pow(exp as u32) }
        } else {
            self.recip().pow(-exp)
        }
    }

    /// Best rational approximation of a float with denominator at most
    /// `max_den`, via the continued-fraction convergent/semiconvergent
    /// construction (the Stern–Brocot best-approximation property).
    ///
    /// Useful for *rationalizing* an `f64` LP solution — snapping values
    /// like `0.33333333331` back to `1/3` before exact post-processing.
    /// Returns `None` for NaN/±∞, `max_den < 1`, or `|x| ≥ 2^127`
    /// (whose integer part alone overflows the convergent arithmetic).
    pub fn from_f64_approx(x: f64, max_den: u64) -> Option<Ratio> {
        if !x.is_finite() || max_den < 1 {
            return None;
        }
        let negative = x < 0.0;
        let target = x.abs();
        // `target.floor() as i128` saturates at i128::MAX for inputs at
        // or above 2^127 — that would *silently* hand back the wrong
        // integer, so refuse instead.
        if target >= 2f64.powi(127) {
            return None;
        }
        let mk = |p: i128, q: i128| {
            let r = Ratio::new(Int::from(p), Int::from(q));
            if negative {
                -r
            } else {
                r
            }
        };

        // Continued-fraction expansion with convergents p/q.
        let (mut p0, mut q0) = (1i128, 0i128);
        let (mut p1, mut q1) = (target.floor() as i128, 1i128);
        let mut frac = target - target.floor();
        while frac > 1e-12 {
            let inv = 1.0 / frac;
            let a_f = inv.floor();
            if a_f >= 1e17 {
                break; // numeric noise floor reached
            }
            frac = inv - a_f;
            let a = a_f as i128;
            // Convergents can outgrow i128 long before `q` hits a huge
            // `max_den`; a wrapped product would return garbage, so on
            // overflow settle for the last convergent already in hand.
            let step = |hi: i128, lo: i128| a.checked_mul(hi).and_then(|m| m.checked_add(lo));
            let (p2, q2) = match (step(p1, p0), step(q1, q0)) {
                (Some(p2), Some(q2)) => (p2, q2),
                _ => break,
            };
            if q2 > max_den as i128 {
                // Best semiconvergent within the bound, if any, else the
                // last convergent; pick whichever is closer to the input.
                let k = (max_den as i128 - q0) / q1;
                let conv = mk(p1, q1);
                if k >= 1 {
                    let semi_pq =
                        k.checked_mul(p1).and_then(|m| m.checked_add(p0)).map(|p| (p, k * q1 + q0));
                    if let Some((sp, sq)) = semi_pq {
                        let semi = mk(sp, sq);
                        let err_semi = (semi.to_f64() - x).abs();
                        let err_conv = (conv.to_f64() - x).abs();
                        return Some(if err_semi < err_conv { semi } else { conv });
                    }
                }
                return Some(conv);
            }
            (p0, q0, p1, q1) = (p1, q1, p2, q2);
        }
        Some(mk(p1, q1))
    }
}

/// `x · 2^e` with saturation: overflow lands on ±inf, underflow on
/// signed zero, and no intermediate `powi` is ever asked for an
/// exponent outside the finite range.
fn scale_by_pow2(x: f64, mut e: i64) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    if e > 2100 {
        return if x > 0.0 { f64::INFINITY } else { f64::NEG_INFINITY };
    }
    if e < -2200 {
        return if x > 0.0 { 0.0 } else { -0.0 };
    }
    let mut x = x;
    while e != 0 {
        let step = e.clamp(-1000, 1000);
        x *= 2f64.powi(step as i32);
        e -= step;
        if x == 0.0 || !x.is_finite() {
            break;
        }
    }
    x
}

// --- arithmetic ---------------------------------------------------------------

impl Ratio {
    /// Normalize `num / den` when `den` is a known-positive denominator
    /// shared by both addends, so a single gcd against the (usually
    /// word-sized) denominator suffices.
    #[inline]
    fn with_shared_den(num: Int, den: &Int) -> Ratio {
        if num.is_zero() {
            return Ratio::zero();
        }
        if den.is_one() {
            return Ratio::raw(num, Int::one());
        }
        let g = crate::gcd(&num, den);
        if g.is_one() {
            Ratio::raw(num, den.clone())
        } else {
            Ratio::raw(&num / &g, den / &g)
        }
    }

    /// Shared implementation of `+` / `-` (Knuth 4.5.1: for reduced
    /// inputs the result is reduced by construction, so no full gcd over
    /// the combined numerator is ever needed).
    fn add_impl(x: &Ratio, y: &Ratio, negate_y: bool) -> Ratio {
        // Same denominator: combine numerators, reduce against den once.
        if x.den == y.den {
            let num = if negate_y { &x.num - &y.num } else { &x.num + &y.num };
            return Ratio::with_shared_den(num, &x.den);
        }
        let d1 = crate::gcd(&x.den, &y.den);
        if d1.is_one() {
            // Coprime denominators: (a·d ± c·b)/(b·d) is already in
            // lowest terms.
            let cross = &y.num * &x.den;
            let lhs = &x.num * &y.den;
            let num = if negate_y { &lhs - &cross } else { &lhs + &cross };
            if num.is_zero() {
                return Ratio::zero();
            }
            return Ratio::raw(num, &x.den * &y.den);
        }
        // General case: t = a·(d/d1) ± c·(b/d1); the only factor shared
        // with the denominator divides d1.
        let db = &x.den / &d1;
        let dd = &y.den / &d1;
        let cross = &y.num * &db;
        let lhs = &x.num * &dd;
        let t = if negate_y { &lhs - &cross } else { &lhs + &cross };
        if t.is_zero() {
            return Ratio::zero();
        }
        let d2 = crate::gcd(&t, &d1);
        if d2.is_one() {
            Ratio::raw(t, &x.den * &dd)
        } else {
            Ratio::raw(&t / &d2, &db * &(&y.den / &d2))
        }
    }
}

impl<'b> Add<&'b Ratio> for &Ratio {
    type Output = Ratio;
    fn add(self, rhs: &'b Ratio) -> Ratio {
        Ratio::add_impl(self, rhs, false)
    }
}

impl<'b> Sub<&'b Ratio> for &Ratio {
    type Output = Ratio;
    fn sub(self, rhs: &'b Ratio) -> Ratio {
        Ratio::add_impl(self, rhs, true)
    }
}

impl<'b> Mul<&'b Ratio> for &Ratio {
    type Output = Ratio;
    fn mul(self, rhs: &'b Ratio) -> Ratio {
        if self.is_zero() || rhs.is_zero() {
            return Ratio::zero();
        }
        // Integer × integer: nothing to reduce.
        if self.den.is_one() && rhs.den.is_one() {
            return Ratio::raw(&self.num * &rhs.num, Int::one());
        }
        // Reduce cross factors first to keep intermediates small; for
        // reduced inputs the result is then reduced by construction and
        // the denominator stays positive.
        let g1 = crate::gcd(&self.num, &rhs.den);
        let g2 = crate::gcd(&rhs.num, &self.den);
        let num = &(&self.num / &g1) * &(&rhs.num / &g2);
        let den = &(&self.den / &g2) * &(&rhs.den / &g1);
        Ratio::raw(num, den)
    }
}

impl<'b> Div<&'b Ratio> for &Ratio {
    type Output = Ratio;
    fn div(self, rhs: &'b Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "Ratio division by zero");
        self * &rhs.recip()
    }
}

macro_rules! forward_ratio_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                (&self).$method(&rhs)
            }
        }
        impl<'b> $trait<&'b Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: &'b Ratio) -> Ratio {
                (&self).$method(rhs)
            }
        }
        impl $trait<Ratio> for &Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                self.$method(&rhs)
            }
        }
    };
}

forward_ratio_binop!(Add, add);
forward_ratio_binop!(Sub, sub);
forward_ratio_binop!(Mul, mul);
forward_ratio_binop!(Div, div);

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio { num: -self.num, den: self.den }
    }
}

impl Neg for &Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio { num: -self.num.clone(), den: self.den.clone() }
    }
}

impl AddAssign<&Ratio> for Ratio {
    fn add_assign(&mut self, rhs: &Ratio) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Ratio> for Ratio {
    fn sub_assign(&mut self, rhs: &Ratio) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Ratio> for Ratio {
    fn mul_assign(&mut self, rhs: &Ratio) {
        *self = &*self * rhs;
    }
}

impl DivAssign<&Ratio> for Ratio {
    fn div_assign(&mut self, rhs: &Ratio) {
        *self = &*self / rhs;
    }
}

impl std::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |a, b| a + b)
    }
}

impl<'a> std::iter::Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |a, b| &a + b)
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Self {
        Ratio::from_i64(v)
    }
}

impl From<Int> for Ratio {
    fn from(v: Int) -> Self {
        Ratio::from_int(v)
    }
}

// --- ordering -------------------------------------------------------------------

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // Shared denominator (including integer vs integer): compare
        // numerators directly, no multiplication.
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // Denominators positive: a/b vs c/d  ⇔  a·d vs c·b.
        match self.num.signum().cmp(&other.num.signum()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

// --- formatting -------------------------------------------------------------------

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

/// Error when parsing a [`Ratio`] from an `a` or `a/b` string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError(String);

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRatioError {}

impl From<ParseIntError> for ParseRatioError {
    fn from(e: ParseIntError) -> Self {
        ParseRatioError(e.0)
    }
}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => Ok(Ratio::from_int(s.parse::<Int>()?)),
            Some((n, d)) => {
                let num: Int = n.parse()?;
                let den: Int = d.parse()?;
                if den.is_zero() {
                    return Err(ParseRatioError(s.to_owned()));
                }
                Ok(Ratio::new(num, den))
            }
        }
    }
}

// --- serde ------------------------------------------------------------------------

#[cfg(feature = "serde")]
impl serde::Serialize for Ratio {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Ratio {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

// --- tests ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(a: i64, b: i64) -> Ratio {
        Ratio::from_frac(a, b)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(2, -4).numer(), &Int::from(-1i64));
        assert_eq!(r(2, -4).denom(), &Int::from(2i64));
        assert_eq!(r(0, 7), Ratio::zero());
        assert_eq!(r(0, 7).denom(), &Int::one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(Int::one(), Int::zero());
    }

    #[test]
    fn arithmetic_small() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn floor_ceil_fract() {
        assert_eq!(r(9, 5).floor(), Int::from(1i64));
        assert_eq!(r(9, 5).ceil(), Int::from(2i64));
        assert_eq!(r(-9, 5).floor(), Int::from(-2i64));
        assert_eq!(r(-9, 5).ceil(), Int::from(-1i64));
        assert_eq!(r(10, 5).floor(), Int::from(2i64));
        assert_eq!(r(10, 5).ceil(), Int::from(2i64));
        assert_eq!(r(9, 5).fract(), r(4, 5));
        assert_eq!(r(-9, 5).fract(), r(1, 5));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(9, 5) < r(2, 1));
        assert!(r(9, 5) > r(17, 10));
        assert_eq!(r(3, 6).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(r(9, 5).to_string(), "9/5");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!("9/5".parse::<Ratio>().unwrap(), r(9, 5));
        assert_eq!("-7".parse::<Ratio>().unwrap(), r(-7, 1));
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("a/b".parse::<Ratio>().is_err());
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        // Huge operands still produce a finite, accurate quotient.
        let big =
            Ratio::new(Int::from(10i64).pow(400), Int::from(10i64).pow(400) * Int::from(3i64));
        assert!((big.to_f64() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn to_f64_mismatched_operand_sizes() {
        // Operands of very different bit lengths: the old shared-shift
        // path zeroed the smaller one (treating 1/huge as 1/1). The net
        // scale must survive instead — saturating to ±inf / signed zero
        // where the true value leaves the f64 range.
        let huge = Int::from(10i64).pow(400); // ~1329 bits
        let tiny_over_huge = Ratio::new(Int::one(), huge.clone());
        assert_eq!(tiny_over_huge.to_f64(), 0.0, "1e-400 underflows to +0, not to 1.0");
        assert!(tiny_over_huge.to_f64().is_sign_positive());
        assert!((-tiny_over_huge).to_f64().is_sign_negative());
        let huge_over_tiny = Ratio::new(huge.clone(), Int::one());
        assert_eq!(huge_over_tiny.to_f64(), f64::INFINITY);
        assert_eq!((-huge_over_tiny).to_f64(), f64::NEG_INFINITY);
        // Ratios of two huge operands keep full f64 accuracy.
        let q = Ratio::new(&huge * &Int::from(7i64), &huge * &Int::from(9i64));
        assert!((q.to_f64() - 7.0 / 9.0).abs() < 1e-15);
        // A large-but-representable value with a small denominator: the
        // one shifted operand must come back on the right scale.
        let q = Ratio::new(Int::one().shl(1020), Int::from(3i64));
        let expect = 2f64.powi(510) / 3.0 * 2f64.powi(510);
        assert!((q.to_f64() - expect).abs() / expect < 1e-15);
    }

    #[test]
    fn pow_negative() {
        assert_eq!(r(2, 3).pow(2), r(4, 9));
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(2, 3).pow(0), Ratio::one());
    }

    #[test]
    fn from_f64_approx_snaps_simple_fractions() {
        assert_eq!(Ratio::from_f64_approx(0.5, 100), Some(r(1, 2)));
        assert_eq!(Ratio::from_f64_approx(1.0 / 3.0, 100), Some(r(1, 3)));
        assert_eq!(Ratio::from_f64_approx(0.33333333331, 1000), Some(r(1, 3)));
        assert_eq!(Ratio::from_f64_approx(-2.2499999999, 100), Some(r(-9, 4)));
        assert_eq!(Ratio::from_f64_approx(7.0, 10), Some(r(7, 1)));
        assert_eq!(Ratio::from_f64_approx(0.0, 10), Some(Ratio::zero()));
    }

    #[test]
    fn from_f64_approx_respects_denominator_bound() {
        // π with small denominators: 22/7 then 355/113.
        let pi = std::f64::consts::PI;
        assert_eq!(Ratio::from_f64_approx(pi, 10), Some(r(22, 7)));
        assert_eq!(Ratio::from_f64_approx(pi, 200), Some(r(355, 113)));
        for max_den in [1u64, 7, 50, 1000] {
            let got = Ratio::from_f64_approx(pi, max_den).unwrap();
            assert!(got.denom() <= &Int::from(max_den));
        }
    }

    #[test]
    fn from_f64_approx_rejects_non_finite() {
        assert_eq!(Ratio::from_f64_approx(f64::NAN, 10), None);
        assert_eq!(Ratio::from_f64_approx(f64::INFINITY, 10), None);
        assert_eq!(Ratio::from_f64_approx(f64::NEG_INFINITY, 10), None);
        assert_eq!(Ratio::from_f64_approx(1.0, 0), None);
    }

    #[test]
    fn from_f64_approx_huge_magnitudes_refuse_instead_of_saturating() {
        // `target.floor() as i128` saturates at i128::MAX for inputs at
        // or above 2^127; the old code silently returned that garbage
        // integer. Now the whole band is refused.
        assert_eq!(Ratio::from_f64_approx(2f64.powi(127), 1000), None);
        assert_eq!(Ratio::from_f64_approx(-(2f64.powi(127)), 1000), None);
        assert_eq!(Ratio::from_f64_approx(f64::MAX, u64::MAX), None);
        assert_eq!(Ratio::from_f64_approx(f64::MIN, u64::MAX), None);
        // Just below the cutoff the float is an exact integer and must
        // round-trip exactly even with the tightest denominator bound.
        let x = 2f64.powi(126);
        let got = Ratio::from_f64_approx(x, 1).unwrap();
        assert_eq!(got.to_f64(), x);
    }

    #[test]
    fn from_f64_approx_edge_inputs_never_panic() {
        // Subnormals, signed zero, values near the noise floor, huge
        // denominator bounds: each must yield a bounded-denominator
        // rational or None — never a debug-overflow panic (the
        // convergent recurrence is checked arithmetic now).
        let inputs = [
            f64::MIN_POSITIVE,
            f64::from_bits(1), // smallest subnormal
            -0.0,
            1e-300,
            1e300,
            (2f64.powi(52) - 1.0) + 0.5,
            std::f64::consts::E * 1e15,
            -1e-15,
        ];
        for &x in &inputs {
            for &md in &[1u64, 2, 1_000, u64::MAX] {
                if let Some(got) = Ratio::from_f64_approx(x, md) {
                    assert!(got.denom() <= &Int::from(md), "x={x} md={md}");
                }
            }
        }
        assert_eq!(Ratio::from_f64_approx(-0.0, 10), Some(Ratio::zero()));
    }

    proptest! {
        #[test]
        fn prop_from_f64_approx_roundtrips_small_rationals(
            (a, b) in (-500i64..500, 1i64..500),
        ) {
            let exact = r(a, b);
            let back = Ratio::from_f64_approx(exact.to_f64(), 1000).unwrap();
            prop_assert_eq!(back, exact);
        }
    }

    #[test]
    fn sum_iterator() {
        let vals = [r(1, 2), r(1, 3), r(1, 6)];
        let s: Ratio = vals.iter().sum();
        assert_eq!(s, Ratio::one());
    }

    proptest! {
        #[test]
        fn prop_field_axioms(
            (a, b) in (any::<i32>(), 1i32..1000),
            (c, d) in (any::<i32>(), 1i32..1000),
            (e, f) in (any::<i32>(), 1i32..1000),
        ) {
            let x = r(a as i64, b as i64);
            let y = r(c as i64, d as i64);
            let z = r(e as i64, f as i64);
            prop_assert_eq!(&x + &y, &y + &x);
            prop_assert_eq!(&(&x + &y) + &z, &x + &(&y + &z));
            prop_assert_eq!(&x * &y, &y * &x);
            prop_assert_eq!(&(&x * &y) * &z, &x * &(&y * &z));
            prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
            prop_assert_eq!(&(&x - &y) + &y, x);
        }

        #[test]
        fn prop_cmp_matches_f64(
            (a, b) in (-10_000i64..10_000, 1i64..10_000),
            (c, d) in (-10_000i64..10_000, 1i64..10_000),
        ) {
            let x = r(a, b);
            let y = r(c, d);
            let fx = a as f64 / b as f64;
            let fy = c as f64 / d as f64;
            if (fx - fy).abs() > 1e-9 {
                prop_assert_eq!(x < y, fx < fy);
            }
        }

        #[test]
        fn prop_floor_ceil_bracket((a, b) in (any::<i32>(), 1i32..1000)) {
            let x = r(a as i64, b as i64);
            let fl = Ratio::from_int(x.floor());
            let ce = Ratio::from_int(x.ceil());
            prop_assert!(fl <= x && x <= ce);
            prop_assert!(&ce - &fl <= Ratio::one());
        }

        #[test]
        fn prop_parse_roundtrip((a, b) in (any::<i64>(), 1i64..i64::MAX)) {
            let x = r(a, b);
            let back: Ratio = x.to_string().parse().unwrap();
            prop_assert_eq!(back, x);
        }

        #[test]
        fn prop_recip((a, b) in (1i64..100_000, 1i64..100_000)) {
            let x = r(a, b);
            prop_assert_eq!(&x * &x.recip(), Ratio::one());
        }
    }
}
