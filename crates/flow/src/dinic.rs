//! Dinic's algorithm: BFS level graph + DFS blocking flows.
//!
//! Runs in `O(V²E)` in general and `O(E·√V)` on the unit-ish bipartite
//! networks produced by scheduling feasibility checks — comfortably fast
//! for every workload in this repository.

use atsched_obs as obs;
use std::collections::VecDeque;

/// Handle to an edge added with [`FlowNetwork::add_edge`]; lets callers
/// read back the flow routed on that edge after [`FlowNetwork::max_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,
    /// Index of the reverse edge in `edges`.
    rev: usize,
}

/// A directed flow network over integer capacities.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Adjacency: edge indices per node.
    adj: Vec<Vec<usize>>,
    edges: Vec<Edge>,
    /// Original capacity per edge index (even = forward, odd = reverse).
    orig_cap: Vec<i64>,
}

impl FlowNetwork {
    /// A network with `n` nodes (0-based) and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork { adj: vec![Vec::new(); n], edges: Vec::new(), orig_cap: Vec::new() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add a directed edge `from → to` with the given capacity.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or the capacity is negative.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> EdgeRef {
        assert!(from < self.adj.len() && to < self.adj.len(), "edge endpoint out of range");
        assert!(cap >= 0, "negative capacity");
        let fwd = self.edges.len();
        self.edges.push(Edge { to, cap, rev: fwd + 1 });
        self.orig_cap.push(cap);
        self.edges.push(Edge { to: from, cap: 0, rev: fwd });
        self.orig_cap.push(0);
        self.adj[from].push(fwd);
        self.adj[to].push(fwd + 1);
        EdgeRef(fwd)
    }

    /// Flow currently routed on an edge (meaningful after
    /// [`FlowNetwork::max_flow`]).
    pub fn flow_on(&self, e: EdgeRef) -> i64 {
        self.orig_cap[e.0] - self.edges[e.0].cap
    }

    /// Reset all flow to zero (restores original capacities).
    pub fn reset(&mut self) {
        for (e, cap) in self.edges.iter_mut().zip(self.orig_cap.iter()) {
            e.cap = *cap;
        }
    }

    /// Compute the maximum `s`→`t` flow. May be called repeatedly; call
    /// [`FlowNetwork::reset`] between unrelated computations.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert!(s < self.adj.len() && t < self.adj.len());
        assert_ne!(s, t, "source equals sink");
        let n = self.adj.len();
        let mut total = 0i64;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];
        // Metrics are accumulated locally and flushed once per call so
        // the inner loops stay free of thread-local lookups.
        let mut bfs_phases = 0u64;
        let mut augmenting_paths = 0u64;
        loop {
            if !self.bfs(s, t, &mut level) {
                obs::counter_add("flow.max_flow_calls", 1);
                obs::counter_add("flow.bfs_phases", bfs_phases);
                obs::counter_add("flow.augmenting_paths", augmenting_paths);
                return total;
            }
            bfs_phases += 1;
            iter.iter_mut().for_each(|v| *v = 0);
            loop {
                let f = self.dfs(s, t, i64::MAX, &level, &mut iter);
                if f == 0 {
                    break;
                }
                augmenting_paths += 1;
                total += f;
            }
        }
    }

    fn bfs(&self, s: usize, t: usize, level: &mut [i32]) -> bool {
        level.iter_mut().for_each(|v| *v = -1);
        level[s] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ei in &self.adj[u] {
                let e = &self.edges[ei];
                if e.cap > 0 && level[e.to] < 0 {
                    level[e.to] = level[u] + 1;
                    q.push_back(e.to);
                }
            }
        }
        level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[i32], iter: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let ei = self.adj[u][iter[u]];
            let (to, cap) = {
                let e = &self.edges[ei];
                (e.to, e.cap)
            };
            if cap > 0 && level[to] == level[u] + 1 {
                let d = self.dfs(to, t, limit.min(cap), level, iter);
                if d > 0 {
                    self.edges[ei].cap -= d;
                    let rev = self.edges[ei].rev;
                    self.edges[rev].cap += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Current capacity of an edge (original capacity, not residual).
    pub fn capacity_of(&self, e: EdgeRef) -> i64 {
        self.orig_cap[e.0]
    }

    /// Change an edge's capacity in place, preserving the current flow.
    ///
    /// Used for warm-started incremental recomputation: lower a capacity,
    /// then call [`FlowNetwork::max_flow`] again to augment from the
    /// existing flow instead of from scratch.
    ///
    /// # Panics
    /// Panics if the new capacity is below the flow currently routed on
    /// the edge — cancel flow first with [`FlowNetwork::decrease_flow`].
    pub fn set_capacity(&mut self, e: EdgeRef, new_cap: i64) {
        assert!(new_cap >= 0);
        let f = self.flow_on(e);
        assert!(
            f <= new_cap,
            "set_capacity below current flow ({f} > {new_cap}); cancel flow first"
        );
        self.orig_cap[e.0] = new_cap;
        self.edges[e.0].cap = new_cap - f;
    }

    /// Remove `amount` units of flow from an edge.
    ///
    /// This is a *local* operation: the caller must apply it along a full
    /// path (or cycle) to keep conservation — e.g. cancel a unit along
    /// `s → job → slot → t` by calling it on each of the three edges.
    ///
    /// # Panics
    /// Panics if the edge carries less than `amount` flow.
    pub fn decrease_flow(&mut self, e: EdgeRef, amount: i64) {
        assert!(amount >= 0 && amount <= self.flow_on(e), "decrease exceeds flow");
        self.edges[e.0].cap += amount;
        let rev = self.edges[e.0].rev;
        self.edges[rev].cap -= amount;
    }

    /// After a [`FlowNetwork::max_flow`] call, the set of nodes reachable
    /// from `s` in the residual graph — i.e. the source side of a minimum
    /// cut.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut q = VecDeque::new();
        seen[s] = true;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ei in &self.adj[u] {
                let e = &self.edges[ei];
                if e.cap > 0 && !seen[e.to] {
                    seen[e.to] = true;
                    q.push_back(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow_on(e), 7);
    }

    #[test]
    fn diamond() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn zero_capacity_edges() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 0);
        assert_eq!(net.max_flow(0, 1), 0);
    }

    #[test]
    fn classic_clrs_example() {
        // CLRS figure 26.1-style network; known max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn reset_allows_recompute() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
        assert_eq!(net.max_flow(0, 1), 0); // saturated residual
        net.reset();
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn min_cut_matches_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        let f = net.max_flow(0, 3);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // Cut capacity across (S, T) equals the flow value.
        let mut cut = 0;
        for (i, e) in net.edges.iter().enumerate() {
            if i % 2 == 0 {
                // forward edges only
                let from = net.edges[e.rev].to;
                if side[from] && !side[e.to] {
                    cut += net.orig_cap[i];
                }
            }
        }
        assert_eq!(cut, f);
    }

    #[test]
    fn bipartite_matching_via_flow() {
        // 3 jobs, 3 slots, complete bipartite with unit caps → matching 3.
        let mut net = FlowNetwork::new(8);
        for j in 0..3 {
            net.add_edge(0, 1 + j, 1);
            for s in 0..3 {
                net.add_edge(1 + j, 4 + s, 1);
            }
        }
        for s in 0..3 {
            net.add_edge(4 + s, 7, 1);
        }
        assert_eq!(net.max_flow(0, 7), 3);
    }

    #[test]
    fn incremental_capacity_reduction() {
        // s → a → t with a parallel s → b → t; close one branch and
        // re-augment: flow drops by exactly that branch's share.
        let mut net = FlowNetwork::new(4);
        let sa = net.add_edge(0, 1, 3);
        let at = net.add_edge(1, 3, 3);
        let sb = net.add_edge(0, 2, 2);
        let bt = net.add_edge(2, 3, 2);
        assert_eq!(net.max_flow(0, 3), 5);
        // Cancel the a-branch flow, then zero its sink edge.
        let f = net.flow_on(at);
        net.decrease_flow(sa, f);
        net.decrease_flow(at, f);
        net.set_capacity(at, 0);
        // Warm-started recompute finds nothing new to add.
        assert_eq!(net.max_flow(0, 3), 0);
        assert_eq!(net.flow_on(sb) + net.flow_on(sa), 2);
        // Restore and re-augment: back to 5 in total.
        net.set_capacity(at, 3);
        assert_eq!(net.max_flow(0, 3), 3);
        let _ = bt;
    }

    #[test]
    #[should_panic(expected = "cancel flow first")]
    fn set_capacity_below_flow_panics() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5);
        net.max_flow(0, 1);
        net.set_capacity(e, 2);
    }

    #[test]
    #[should_panic(expected = "decrease exceeds flow")]
    fn decrease_beyond_flow_panics() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5);
        net.max_flow(0, 1);
        net.decrease_flow(e, 6);
    }

    // Brute-force max-flow by enumerating all edge subsets is infeasible;
    // instead verify flow conservation and capacity constraints plus
    // max-flow = min-cut on random small graphs.
    proptest! {
        #[test]
        fn prop_flow_conservation_and_mincut(
            edges in proptest::collection::vec((0usize..6, 0usize..6, 0i64..20), 1..25),
        ) {
            let mut net = FlowNetwork::new(6);
            let mut refs = Vec::new();
            for (u, v, c) in &edges {
                if u != v {
                    refs.push((*u, *v, net.add_edge(*u, *v, *c)));
                }
            }
            let f = net.max_flow(0, 5);
            prop_assert!(f >= 0);

            // Capacity constraints and conservation at interior nodes.
            let mut balance = [0i64; 6];
            for (u, v, r) in &refs {
                let fl = net.flow_on(*r);
                prop_assert!(fl >= 0);
                balance[*u] -= fl;
                balance[*v] += fl;
            }
            for &b in &balance[1..5] {
                prop_assert_eq!(b, 0);
            }
            prop_assert_eq!(balance[5], f);
            prop_assert_eq!(balance[0], -f);

            // Min-cut certificate: cut capacity equals flow value.
            let side = net.min_cut_source_side(0);
            prop_assert!(side[0]);
            prop_assert!(f == 0 || !side[5]);
            if !side[5] {
                let mut cut = 0i64;
                for (u, v, r) in &refs {
                    if side[*u] && !side[*v] {
                        cut += net.orig_cap[r.0];
                    }
                }
                prop_assert_eq!(cut, f);
            }
        }
    }
}
