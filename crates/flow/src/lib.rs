//! # atsched-flow
//!
//! Dinic's max-flow algorithm on integer capacities, plus min-cut
//! extraction.
//!
//! Active-time scheduling reduces feasibility questions to max-flow (the
//! paper's §1 and the proof of Lemma 4.1): given a set of open time slots,
//! jobs can be fully scheduled iff the flow network
//! `source → job (cap p_j) → slot (cap 1, only slots inside the window)
//! → sink (cap g)` has a maximum flow equal to `Σ p_j`. This crate is that
//! substrate; [`atsched_core`](../atsched_core) builds the scheduling
//! networks on top of it.
//!
//! ## Example
//!
//! ```
//! use atsched_flow::FlowNetwork;
//!
//! let mut net = FlowNetwork::new(4);
//! net.add_edge(0, 1, 3);
//! net.add_edge(0, 2, 2);
//! net.add_edge(1, 3, 2);
//! net.add_edge(2, 3, 3);
//! net.add_edge(1, 2, 5);
//! assert_eq!(net.max_flow(0, 3), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dinic;

pub use dinic::{EdgeRef, FlowNetwork};
