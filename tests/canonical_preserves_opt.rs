//! The canonical transformation's WLOG claims, verified:
//! the rigid-leaf split "reduce j's window to match i''s" (paper §2) must
//! not change the optimum — slots inside a leaf interval are
//! interchangeable, so pinning the longest job to the leftmost sub-window
//! is harmless. We check by exhaustive comparison: exact OPT of the
//! original instance vs exact OPT of the instance with windows replaced
//! by the canonical node intervals.

use nested_active_time::baselines::exact::nested_opt;
use nested_active_time::core::canonical::canonicalize;
use nested_active_time::core::instance::{Instance, Job};
use nested_active_time::core::tree::Forest;
use nested_active_time::workloads::generators::{random_laminar, LaminarConfig};
/// Test-case table: (g, [(release, deadline, processing)]).
type Cases = Vec<(i64, Vec<(i64, i64, i64)>)>;

/// Instance with every job's window replaced by its canonical node
/// interval (this is the instance the LP effectively solves).
fn canonical_windows(inst: &Instance) -> Instance {
    let forest = Forest::build(inst).unwrap();
    let canon = canonicalize(&forest, inst);
    let jobs: Vec<Job> = (0..inst.num_jobs())
        .map(|j| {
            let iv = canon.nodes[canon.job_node[j]].interval;
            Job::new(iv.0, iv.1, inst.jobs[j].processing)
        })
        .collect();
    Instance::new(inst.g, jobs).unwrap()
}

fn assert_opt_preserved(inst: &Instance) {
    let original = nested_opt(inst, 0).map(|s| s.active_time());
    let canonicalized = nested_opt(&canonical_windows(inst), 0).map(|s| s.active_time());
    assert_eq!(original, canonicalized, "instance {:?}", inst.jobs);
}

#[test]
fn canonical_windows_preserve_opt_handpicked() {
    let shapes: Cases = vec![
        // Non-rigid leaf: longest job shorter than the window.
        (2, vec![(0, 5, 2), (0, 5, 1)]),
        // Two-level nesting with a splittable leaf.
        (2, vec![(0, 8, 2), (1, 6, 3), (1, 6, 1)]),
        // Multiple leaves each needing a split.
        (3, vec![(0, 14, 2), (1, 5, 2), (6, 12, 3), (6, 12, 1)]),
        // Ties between longest jobs.
        (2, vec![(0, 4, 2), (0, 4, 2), (0, 4, 1)]),
    ];
    for (g, jobs) in shapes {
        let inst = Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect())
            .unwrap();
        assert_opt_preserved(&inst);
    }
}

#[test]
fn canonical_windows_preserve_opt_random() {
    for seed in 0..15u64 {
        let cfg = LaminarConfig {
            g: 2,
            horizon: 12,
            max_depth: 2,
            max_children: 2,
            jobs_per_node: (1, 2),
            max_processing: 4,
            child_percent: 60,
        };
        assert_opt_preserved(&random_laminar(&cfg, seed));
    }
}

#[test]
fn canonical_windows_preserve_feasibility() {
    // Even when instances are close to capacity, the transformed windows
    // must not flip feasibility.
    for seed in 20..35u64 {
        let cfg = LaminarConfig { g: 2, horizon: 14, ..Default::default() };
        let inst = random_laminar(&cfg, seed);
        let transformed = canonical_windows(&inst);
        assert_eq!(inst.is_feasible_all_open(), transformed.is_feasible_all_open(), "seed {seed}");
    }
}
