//! Equivalence oracle for the LP-free combinatorial tree path.
//!
//! `lp-path=tree`'s only legal behaviors are (a) solving with a
//! *bit-identical* exact objective and schedule to the simplex, (b)
//! proving infeasibility exactly when the simplex does, or (c)
//! declining — never "solving differently". `lp-path=auto` (the
//! default) must therefore be observationally indistinguishable from
//! `lp-path=simplex` on every instance, which is what these properties
//! pin down, over the same dyadic shrinkable strategy as the pipeline
//! proptests plus the workloads generators.

use nested_active_time::core::instance::{Instance, Job};
use nested_active_time::core::solver::{solve_nested, LpPath, SolveError, SolverOptions};
use nested_active_time::workloads::families::{shallow_nest, unit_blocks};
use nested_active_time::workloads::generators::{
    random_laminar, random_multi_root, LaminarConfig, MultiRootConfig,
};
use proptest::prelude::*;

const LEVELS: u32 = 3; // horizon 8

fn opts(path: LpPath) -> SolverOptions {
    SolverOptions::exact().with_lp_path(path)
}

fn dyadic_job() -> impl Strategy<Value = Job> {
    (0..=LEVELS, any::<u32>(), 1i64..4).prop_map(|(level, idx, p)| {
        let width = 1i64 << (LEVELS - level);
        let positions = 1u32 << level;
        let i = (idx % positions) as i64;
        Job::new(i * width, (i + 1) * width, p.min(width))
    })
}

/// Laminar by construction but *not* filtered for feasibility: the
/// oracle must also agree on infeasibility verdicts.
fn any_instance() -> impl Strategy<Value = Instance> {
    (1i64..4, proptest::collection::vec(dyadic_job(), 1..8))
        .prop_filter_map("well-formed", |(g, jobs)| Instance::new(g, jobs).ok())
}

/// Auto and Simplex must agree observationally: the same verdict, and
/// on success a bit-identical exact LP objective plus an identical
/// slot-for-slot schedule.
fn assert_paths_agree(inst: &Instance) -> Result<(), TestCaseError> {
    let auto = solve_nested(inst, &opts(LpPath::Auto));
    let simplex = solve_nested(inst, &opts(LpPath::Simplex));
    match (&auto, &simplex) {
        (Ok(a), Ok(s)) => {
            prop_assert_eq!(&a.stats.lp_objective_exact, &s.stats.lp_objective_exact);
            prop_assert_eq!(&a.schedule.slots, &s.schedule.slots);
            a.schedule.verify(inst).unwrap();
        }
        (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
        (a, s) => {
            let label = |r: &Result<_, SolveError>| match r {
                Ok(_) => "solved".to_string(),
                Err(e) => format!("error: {e}"),
            };
            prop_assert!(false, "verdicts diverged: auto={}, simplex={}", label(a), label(s));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Shrinkable dyadic instances, feasible and infeasible alike.
    #[test]
    fn prop_tree_path_matches_simplex_on_dyadic(inst in any_instance()) {
        assert_paths_agree(&inst)?;
    }

    /// Random laminar trees and multi-root forests from the workloads
    /// generators — deeper nesting and group structure than the dyadic
    /// strategy reaches.
    #[test]
    fn prop_tree_path_matches_simplex_on_generated(seed in any::<u64>()) {
        let cfg = LaminarConfig { g: 2, horizon: 16, ..Default::default() };
        assert_paths_agree(&random_laminar(&cfg, seed))?;
        let mcfg = MultiRootConfig { roots: 3, ..Default::default() };
        assert_paths_agree(&random_multi_root(&mcfg, seed))?;
    }

    /// The unit-blocks family is 100% tree-handled: forcing
    /// `lp-path=tree` must never decline, and the result must still be
    /// bit-identical to the simplex.
    #[test]
    fn prop_unit_blocks_family_is_fully_tree_handled(
        blocks in 1usize..5,
        jobs in 1usize..9,
        width in 1i64..4,
        g in 1i64..5,
    ) {
        prop_assume!(jobs as i64 <= g * width);
        let inst = unit_blocks(blocks, jobs, width, g);
        let tree = solve_nested(&inst, &opts(LpPath::Tree))
            .expect("unit-blocks family must be 100% tree-handled");
        let simplex = solve_nested(&inst, &opts(LpPath::Simplex)).unwrap();
        prop_assert_eq!(&tree.stats.lp_objective_exact, &simplex.stats.lp_objective_exact);
        prop_assert_eq!(&tree.schedule.slots, &simplex.schedule.slots);
    }

    /// Likewise for the shallow-nest family: the saturated rigid leaf
    /// pins the root uniquely, so the tree path owns the whole family.
    #[test]
    fn prop_shallow_nest_family_is_fully_tree_handled(
        blocks in 1usize..4,
        top in 1usize..7,
        g in 1i64..4,
    ) {
        prop_assume!((top as i64) < 4 * g);
        let inst = shallow_nest(blocks, top, g);
        let tree = solve_nested(&inst, &opts(LpPath::Tree))
            .expect("shallow-nest family must be 100% tree-handled");
        let simplex = solve_nested(&inst, &opts(LpPath::Simplex)).unwrap();
        prop_assert_eq!(&tree.stats.lp_objective_exact, &simplex.stats.lp_objective_exact);
        prop_assert_eq!(&tree.schedule.slots, &simplex.schedule.slots);
    }
}
