//! E1 as a test: on random laminar instances the 9/5 algorithm must stay
//! within the proven bound of the exact optimum, produce verified
//! schedules, never trigger the repair pass on the exact path, and at
//! least match the LP lower bound.

use nested_active_time::baselines::exact::nested_opt;
use nested_active_time::core::solver::{solve_nested, SolverOptions};
use nested_active_time::workloads::generators::{random_laminar, LaminarConfig};

#[test]
fn ratio_bound_holds_on_random_instances() {
    for g in [2i64, 3, 5] {
        for seed in 0..12u64 {
            let cfg = LaminarConfig {
                g,
                horizon: 14,
                max_depth: 3,
                max_children: 3,
                jobs_per_node: (1, 2),
                max_processing: 3,
                child_percent: 65,
            };
            let inst = random_laminar(&cfg, seed);
            let sol = solve_nested(&inst, &SolverOptions::exact()).expect("feasible");
            sol.schedule.verify(&inst).unwrap();
            assert_eq!(sol.stats.repair_opened, 0, "g={g} seed={seed}: repair fired");

            let opt = nested_opt(&inst, sol.stats.lp_objective.ceil() as i64)
                .expect("feasible")
                .active_time() as f64;
            let alg = sol.stats.active_slots as f64;
            assert!(alg <= 1.8 * opt + 1e-9, "g={g} seed={seed}: ALG {alg} > 1.8·OPT {opt}");
            assert!(sol.stats.lp_objective <= opt + 1e-9, "g={g} seed={seed}: LP above OPT");
            assert!(alg >= opt, "ALG below OPT is impossible");
            // Lemma 3.3: opened ≤ (9/5)·LP.
            assert!(
                sol.stats.opened_slots as f64 <= 1.8 * sol.stats.lp_objective + 1e-9,
                "g={g} seed={seed}: budget lemma violated"
            );
        }
    }
}

#[test]
fn float_backend_also_within_bound() {
    for seed in 0..10u64 {
        let cfg = LaminarConfig { g: 4, horizon: 20, ..Default::default() };
        let inst = random_laminar(&cfg, seed);
        let sol = solve_nested(&inst, &SolverOptions::float()).expect("feasible");
        sol.schedule.verify(&inst).unwrap();
        assert!(
            sol.stats.opened_slots as f64
                <= 1.8 * sol.stats.lp_objective + sol.stats.repair_opened as f64 + 1e-6
        );
    }
}

#[test]
fn adversarial_families_within_bound() {
    use nested_active_time::gaps::instances::{
        gap2_instance, lemma51_instance, lemma51_integral_opt,
    };
    for g in [2i64, 3, 4] {
        let inst = lemma51_instance(g);
        let sol = solve_nested(&inst, &SolverOptions::exact()).unwrap();
        sol.schedule.verify(&inst).unwrap();
        let opt = lemma51_integral_opt(g) as f64;
        assert!(sol.stats.active_slots as f64 <= 1.8 * opt + 1e-9, "g={g}");
    }
    for g in [2i64, 4, 8] {
        let inst = gap2_instance(g);
        let sol = solve_nested(&inst, &SolverOptions::exact()).unwrap();
        assert_eq!(sol.stats.active_slots, 2, "gap2 family is solved optimally");
    }
}
