//! Property: the parallel batch engine is observationally identical to
//! sequential solving — for any corpus of laminar instances, any worker
//! count, and cache on or off, `Engine::solve_batch` yields elementwise
//! exactly the schedules and LP openings that `solve_nested` produces
//! one instance at a time.
//!
//! Instances use the dyadic-window strategy (laminar by construction,
//! shrink-safe); feasibility is *not* filtered, so infeasible inputs
//! exercise the `Outcome::Infeasible` path against the sequential
//! `SolveError::Infeasible`.

use nested_active_time::core::instance::{Instance, Job};
use nested_active_time::core::solver::{solve_nested, SolveError, SolverOptions};
use nested_active_time::engine::{Engine, EngineConfig, Outcome};
use proptest::prelude::*;

const LEVELS: u32 = 3; // horizon 8

fn dyadic_job() -> impl Strategy<Value = Job> {
    (0..=LEVELS, any::<u32>(), 1i64..4).prop_map(|(level, idx, p)| {
        let width = 1i64 << (LEVELS - level);
        let positions = 1u32 << level;
        let i = (idx % positions) as i64;
        Job::new(i * width, (i + 1) * width, p.min(width))
    })
}

fn laminar_instance() -> impl Strategy<Value = Instance> {
    (1i64..4, proptest::collection::vec(dyadic_job(), 1..8))
        .prop_filter_map("instance must validate", |(g, jobs)| Instance::new(g, jobs).ok())
}

proptest! {
    #[test]
    fn batch_is_elementwise_identical_to_sequential(
        instances in proptest::collection::vec(laminar_instance(), 1..6),
        workers in 1usize..5,
        cache in any::<bool>(),
    ) {
        let opts = SolverOptions::exact();
        let engine = Engine::new(EngineConfig::default().workers(workers).cache(cache));
        let batch = engine.solve_batch(&instances, &opts);
        prop_assert_eq!(batch.outcomes.len(), instances.len());
        prop_assert_eq!(batch.report.total, instances.len());

        for (inst, outcome) in instances.iter().zip(&batch.outcomes) {
            match solve_nested(inst, &opts) {
                Ok(seq) => {
                    let item = match outcome {
                        Outcome::Solved(item) => item,
                        other => return Err(TestCaseError::Fail(format!(
                            "sequential solved but batch said {}", other.label()
                        ))),
                    };
                    prop_assert_eq!(&item.result.schedule, &seq.schedule);
                    prop_assert_eq!(&item.result.z, &seq.z);
                    prop_assert_eq!(
                        item.result.stats.active_slots,
                        seq.stats.active_slots
                    );
                }
                Err(SolveError::Infeasible) => {
                    prop_assert!(matches!(outcome, Outcome::Infeasible));
                }
                Err(_) => {
                    prop_assert!(matches!(outcome, Outcome::Failed(_)));
                }
            }
        }

        let solved = batch.outcomes.iter().filter(|o| o.is_solved()).count();
        prop_assert_eq!(batch.report.solved, solved);
    }
}
