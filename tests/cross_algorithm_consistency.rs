//! Cross-checks between every algorithm in the workspace: all produce
//! verified schedules; the exact solver lower-bounds everything; the LP
//! lower-bounds the exact solver; the unit solver equals the exact solver
//! on unit instances.

use nested_active_time::baselines::exact::{brute_force_opt, nested_opt};
use nested_active_time::baselines::greedy::{minimal_feasible, ScanOrder};
use nested_active_time::baselines::unit_opt::solve_unit;
use nested_active_time::core::solver::{solve_nested, SolverOptions};
use nested_active_time::workloads::generators::{
    random_laminar, random_unit_laminar, LaminarConfig,
};

#[test]
fn all_algorithms_agree_on_ordering() {
    for seed in 0..10u64 {
        let cfg = LaminarConfig {
            g: 3,
            horizon: 12,
            max_depth: 2,
            max_children: 2,
            jobs_per_node: (1, 2),
            max_processing: 3,
            child_percent: 60,
        };
        let inst = random_laminar(&cfg, seed);
        let ours = solve_nested(&inst, &SolverOptions::exact()).unwrap();
        let opt = nested_opt(&inst, 0).unwrap().active_time();
        let brute = brute_force_opt(&inst, 16).unwrap().active_time();
        assert_eq!(opt, brute, "seed {seed}: the two exact engines disagree");

        for order in [ScanOrder::LeftToRight, ScanOrder::RightToLeft, ScanOrder::Shuffled(3)] {
            let gr = minimal_feasible(&inst, order).unwrap();
            gr.schedule.verify(&inst).unwrap();
            assert!(gr.schedule.active_time() >= opt, "greedy below OPT");
            assert!(gr.schedule.active_time() <= 3 * opt, "greedy above its proven factor");
        }
        assert!(ours.stats.active_slots >= opt);
        assert!((ours.stats.active_slots as f64) <= 1.8 * opt as f64 + 1e-9);
    }
}

#[test]
fn unit_solver_equals_exact_on_unit_instances() {
    for seed in 0..15u64 {
        let inst = random_unit_laminar(2, 3, 8, seed);
        match solve_unit(&inst) {
            Ok(s) => {
                s.verify(&inst).unwrap();
                let opt = nested_opt(&inst, 0).expect("unit said feasible");
                assert_eq!(s.active_time(), opt.active_time(), "seed {seed}");
            }
            Err(_) => {
                assert!(nested_opt(&inst, 0).is_none(), "seed {seed}: feasibility disagreement");
            }
        }
    }
}

#[test]
fn schedules_from_all_sources_verify() {
    let cfg = LaminarConfig { g: 4, horizon: 18, ..Default::default() };
    for seed in 20..26u64 {
        let inst = random_laminar(&cfg, seed);
        solve_nested(&inst, &SolverOptions::exact()).unwrap().schedule.verify(&inst).unwrap();
        solve_nested(&inst, &SolverOptions::float()).unwrap().schedule.verify(&inst).unwrap();
        minimal_feasible(&inst, ScanOrder::RightToLeft).unwrap().schedule.verify(&inst).unwrap();
    }
}
