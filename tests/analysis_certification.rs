//! E9 as a test: the paper's analysis invariants (Claim 1, Lemma 3.3,
//! Lemmas 4.9/4.11 and the triples cover) hold along the real pipeline on
//! random instances.

use nested_active_time::core::canonical::{canonicalize, validate_canonical};
use nested_active_time::core::certify::{
    build_triples_from_typing, check_lemma_4_11, check_lemma_4_9, check_triples_cover, classify,
};
use nested_active_time::core::instance::Instance;
use nested_active_time::core::lp_model::{build, group_jobs};
use nested_active_time::core::opt23;
use nested_active_time::core::rounding::{check_budget, round};
use nested_active_time::core::transform::{check_claim1, push_down};
use nested_active_time::core::tree::Forest;
use nested_active_time::num::Ratio;
use nested_active_time::workloads::generators::{random_laminar, LaminarConfig};

fn pipeline_invariants(inst: &Instance) {
    let forest = Forest::build(inst).unwrap();
    forest.validate().unwrap();
    let canon = canonicalize(&forest, inst);
    validate_canonical(&canon, inst).unwrap();

    let bounds = opt23::compute(&canon, inst);
    let lp = build::<Ratio>(&canon, inst, &bounds);
    let sol = lp.solve().expect("generator guarantees feasibility");
    let groups = group_jobs(&canon, inst);
    sol.check(&canon, inst, &groups).unwrap();

    let out = push_down(&canon, sol);
    out.solution.check(&canon, inst, &groups).unwrap();
    check_claim1(&canon, &out.solution, &out.top_positive).unwrap();

    let rounded = round(&canon, &out.solution, &out.top_positive);
    check_budget(&canon, &out.solution, &rounded).unwrap();

    let typing = classify(&canon, &out.solution, &out.top_positive, &rounded);
    check_lemma_4_9(&canon, &typing).unwrap();
    let triples = build_triples_from_typing(&canon, &typing);
    check_triples_cover(&typing, &triples).unwrap();
    let (ok, total) = check_lemma_4_11(&canon, &triples.triples);
    assert_eq!(ok, total, "triple structure of Lemma 4.11 violated");
}

#[test]
fn invariants_on_random_instances() {
    for seed in 0..25u64 {
        let cfg = LaminarConfig { g: 3, horizon: 18, ..Default::default() };
        pipeline_invariants(&random_laminar(&cfg, seed));
    }
}

#[test]
fn invariants_on_deeper_trees() {
    for seed in 0..10u64 {
        let cfg = LaminarConfig {
            g: 5,
            horizon: 30,
            max_depth: 4,
            max_children: 4,
            jobs_per_node: (1, 3),
            max_processing: 4,
            child_percent: 75,
        };
        pipeline_invariants(&random_laminar(&cfg, seed));
    }
}

#[test]
fn overflow_family_reaches_type_c_regime() {
    use nested_active_time::workloads::families::overflow_family;
    // Engineered so the LP leaves fractional mass in (1, 4/3) on some
    // child subtree; the full invariant set must hold there too, and the
    // classifier must actually see a type-C node for at least one config.
    let mut saw_c = false;
    for (g, branches, extra) in [(10i64, 3usize, 1i64), (10, 4, 1), (12, 3, 1), (9, 3, 1)] {
        let inst = overflow_family(g, branches, extra);
        pipeline_invariants(&inst);

        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let bounds = opt23::compute(&canon, &inst);
        let sol = build::<Ratio>(&canon, &inst, &bounds).solve().unwrap();
        let out = push_down(&canon, sol);
        let rounded = round(&canon, &out.solution, &out.top_positive);
        let typing = classify(&canon, &out.solution, &out.top_positive, &rounded);
        use nested_active_time::core::certify::NodeType;
        if !typing.of(NodeType::C1).is_empty() || !typing.of(NodeType::C2).is_empty() {
            saw_c = true;
        }
    }
    assert!(saw_c, "overflow family failed to produce any type-C node");
}

#[test]
fn invariants_on_crafted_families() {
    use nested_active_time::workloads::families::{deep_chain, dyadic_full, wide_star};
    pipeline_invariants(&deep_chain(6, 2));
    pipeline_invariants(&deep_chain(3, 1));
    pipeline_invariants(&wide_star(5, 2, 4, 3));
    pipeline_invariants(&wide_star(3, 3, 2, 4));
    pipeline_invariants(&dyadic_full(3, 1, 3));
}

#[test]
fn invariants_on_adversarial_families() {
    use nested_active_time::gaps::instances::{gap2_instance, lemma51_instance};
    for g in [2i64, 3, 4] {
        pipeline_invariants(&lemma51_instance(g));
        pipeline_invariants(&gap2_instance(g));
    }
}
