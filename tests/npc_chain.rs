//! E6 as a test: the full NP-completeness chain — random Set Cover →
//! Prefix Sum Cover → nested active-time — preserves the decision answer
//! at every step, for every budget.

use nested_active_time::baselines::exact::nested_opt;
use nested_active_time::npc::prefix_sum_cover::PrefixSumCover;
use nested_active_time::npc::reductions::{psc_to_active_time, set_cover_to_psc};
use nested_active_time::npc::set_cover::random_set_cover;

#[test]
fn chain_preserves_decisions() {
    for seed in 0..10u64 {
        let sc = random_set_cover(3, 3, seed);
        for k in 1..=2usize {
            let sc_yes = sc.solvable_with(k);
            let psc = set_cover_to_psc(&sc, k);
            assert_eq!(sc_yes, psc.solvable(), "SC↔PSC seed {seed} k {k}");

            let red = psc_to_active_time(&psc);
            assert!(red.instance.check_laminar().is_ok());
            let opt = nested_opt(&red.instance, red.base_slots)
                .expect("reduction instances are always feasible");
            let at_yes = (opt.active_time() as i64) <= red.base_slots + red.k as i64;
            assert_eq!(psc.solvable(), at_yes, "PSC↔AT seed {seed} k {k}");
        }
    }
}

#[test]
fn reduction_base_slots_are_forced() {
    // Even a YES instance can never go below the rigid base.
    let psc = PrefixSumCover::new(vec![vec![2, 1]], vec![2, 1], 1).unwrap();
    let red = psc_to_active_time(&psc);
    let opt = nested_opt(&red.instance, 0).unwrap();
    assert!(opt.active_time() as i64 >= red.base_slots);
}

#[test]
fn paper_counterexample_shape_handled() {
    // u = (1,0,1) incidence — the shape where the paper's slope-1
    // staircase fails monotonicity; our slope-2 version must validate and
    // preserve the answer.
    use nested_active_time::npc::set_cover::SetCover;
    let sc = SetCover::new(3, vec![vec![0, 2], vec![1], vec![0, 1, 2]]).unwrap();
    for k in 1..=2usize {
        let psc = set_cover_to_psc(&sc, k); // panics internally if invalid
        assert_eq!(sc.solvable_with(k), psc.solvable(), "k {k}");
    }
}
