//! Property: incremental sessions are observationally identical to
//! cold solving — for any multi-root laminar base instance and any
//! sequence of deltas (adds, removes, re-windows, including bridge
//! jobs that merge forest roots and removals that split them again),
//! every `Session::amend` outcome is bit-identical to a fresh
//! `Engine::solve_one` of the amended instance: same `z` vector, same
//! schedule, the schedule verifies, and on small instances the
//! Lemma 4.1 support-structure certificate holds.
//!
//! The cold reference engine runs with its cache *off*, so nothing the
//! session reuses (spliced shards, cached parts, warm LP starts) can
//! leak into the baseline.

use nested_active_time::core::certify::check_lemma_4_1;
use nested_active_time::core::delta::{apply, JobDelta};
use nested_active_time::core::instance::{Instance, Job};
use nested_active_time::core::solver::{ShardMode, SolverOptions};
use nested_active_time::engine::{Engine, EngineConfig, Outcome};
use proptest::prelude::*;

/// Each root block occupies `[16b, 16b + 8)`; dyadic windows inside a
/// block keep the instance laminar by construction.
const BLOCK: i64 = 16;
const SPAN: i64 = 8;
const LEVELS: u32 = 3;

fn dyadic_job_in_block(blocks: i64) -> impl Strategy<Value = Job> {
    (0..blocks, 0..=LEVELS, any::<u32>(), 1i64..4).prop_map(|(b, level, idx, p)| {
        let width = 1i64 << (LEVELS - level);
        let positions = 1u32 << level;
        let i = (idx % positions) as i64;
        let base = BLOCK * b;
        Job::new(base + i * width, base + (i + 1) * width, p.min(width))
    })
}

/// A job whose window contains blocks `0..=j` whole: adding one merges
/// those roots under a single new root; removing it splits them again.
fn bridge_job(blocks: i64) -> impl Strategy<Value = Job> {
    (1..blocks, 1i64..3).prop_map(|(j, p)| Job::new(0, BLOCK * j + SPAN, p))
}

#[derive(Debug, Clone)]
enum Op {
    Add(Job),
    Remove(usize),
    Modify(usize, Job),
}

fn op(blocks: i64) -> impl Strategy<Value = Op> {
    (0u32..8, dyadic_job_in_block(blocks), bridge_job(blocks), any::<u32>()).prop_map(
        |(sel, dyadic, bridge, raw)| match sel {
            0..=2 => Op::Add(dyadic),
            3 => Op::Add(bridge),
            4 | 5 => Op::Remove(raw as usize),
            _ => Op::Modify(raw as usize, dyadic),
        },
    )
}

/// Lower raw ops onto a delta against `current`, resolving indices
/// modulo the live job count and skipping ops that would reference the
/// same pre-amend job twice (the API rejects duplicates by design).
fn build_delta(current: &Instance, ops: &[Op]) -> Option<JobDelta> {
    let n = current.num_jobs();
    let mut delta = JobDelta::new();
    let mut touched = Vec::new();
    let mut any = false;
    for op in ops {
        match op {
            Op::Add(job) => {
                delta = delta.add(*job);
                any = true;
            }
            Op::Remove(raw) if n > 1 => {
                let id = raw % n;
                if !touched.contains(&id) {
                    touched.push(id);
                    delta = delta.remove(id);
                    any = true;
                }
            }
            Op::Modify(raw, job) if n > 0 => {
                let id = raw % n;
                if !touched.contains(&id) {
                    touched.push(id);
                    delta = delta.modify_window(id, job.release, job.deadline);
                    any = true;
                }
            }
            _ => {}
        }
    }
    any.then_some(delta)
}

fn assert_matches_cold(
    label: &str,
    inst: &Instance,
    session_outcome: &Outcome,
    cold: &Engine,
    opts: &SolverOptions,
) -> Result<(), TestCaseError> {
    let reference = cold.solve_one(inst, opts);
    match (session_outcome, &reference) {
        (Outcome::Solved(s), Outcome::Solved(r)) => {
            prop_assert_eq!(&s.result.z, &r.result.z, "{}: z diverged", label);
            prop_assert_eq!(&s.result.schedule, &r.result.schedule, "{}: schedule diverged", label);
            prop_assert_eq!(
                s.result.stats.active_slots,
                r.result.stats.active_slots,
                "{}: active slots diverged",
                label
            );
            prop_assert!(
                s.result.schedule.verify(inst).is_ok(),
                "{}: schedule fails verification",
                label
            );
            if inst.num_jobs() <= 12 {
                prop_assert!(
                    check_lemma_4_1(&s.result.forest, inst, &s.result.z, 12).is_ok(),
                    "{}: Lemma 4.1 certificate failed",
                    label
                );
            }
        }
        (Outcome::Infeasible, Outcome::Infeasible) => {}
        (Outcome::Failed(_), Outcome::Failed(_)) => {}
        (got, want) => {
            return Err(TestCaseError::Fail(format!(
                "{label}: session said {}, cold solve said {}",
                got.label(),
                want.label()
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn amend_sequences_match_cold_solves(
        blocks in 2i64..4,
        base_jobs in proptest::collection::vec(any::<u32>(), 2..10),
        deltas in proptest::collection::vec(proptest::collection::vec(op(4), 1..4), 1..4),
        shard_force in any::<bool>(),
    ) {
        // Deterministically place the base jobs using the dyadic grid.
        let jobs: Vec<Job> = base_jobs
            .iter()
            .enumerate()
            .map(|(k, &seed)| {
                let b = (k as i64) % blocks;
                let level = seed % (LEVELS + 1);
                let width = 1i64 << (LEVELS - level);
                let positions = 1u32 << level;
                let i = ((seed / 7) % positions) as i64;
                let base = BLOCK * b;
                Job::new(base + i * width, base + (i + 1) * width, ((seed % 3) as i64 + 1).min(width))
            })
            .collect();
        let Ok(base) = Instance::new(2, jobs) else { return Ok(()) };

        let mut opts = SolverOptions::exact();
        opts.shard = if shard_force { ShardMode::Force } else { ShardMode::Auto };

        let engine = Engine::new(EngineConfig::default());
        let cold = Engine::new(EngineConfig::default().cache(false));

        let session = engine.open_session(base.clone(), &opts);
        assert_matches_cold("open", &base, &session.outcome(), &cold, &opts)?;

        let mut current = base;
        for (step, ops) in deltas.iter().enumerate() {
            let Some(delta) = build_delta(&current, ops) else { continue };
            let expected = match apply(&current, &delta) {
                Ok(next) => next,
                Err(_) => continue, // e.g. removal leaves zero jobs
            };
            let outcome = session.amend(&delta).expect("delta pre-validated");
            prop_assert_eq!(
                &session.instance(),
                &expected,
                "step {}: session instance diverged from apply()",
                step
            );
            assert_matches_cold(&format!("amend {step}"), &expected, &outcome, &cold, &opts)?;
            current = expected;
        }
    }
}
