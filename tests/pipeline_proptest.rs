//! Property-based end-to-end pipeline tests with shrinking.
//!
//! Strategy: jobs on *dyadic* windows `[i·2^l, (i+1)·2^l)` — any set of
//! dyadic intervals is laminar by construction, so proptest can shrink
//! freely without breaking the precondition.

use nested_active_time::baselines::exact::nested_opt;
use nested_active_time::baselines::greedy::{minimal_feasible, ScanOrder};
use nested_active_time::baselines::incremental::minimal_feasible_fast;
use nested_active_time::core::instance::{Instance, Job};
use nested_active_time::core::solver::{solve_nested, SolverOptions};
use proptest::prelude::*;

const LEVELS: u32 = 3; // horizon 8

fn dyadic_job() -> impl Strategy<Value = Job> {
    (0..=LEVELS, any::<u32>(), 1i64..4).prop_map(|(level, idx, p)| {
        let width = 1i64 << (LEVELS - level);
        let positions = 1u32 << level;
        let i = (idx % positions) as i64;
        Job::new(i * width, (i + 1) * width, p.min(width))
    })
}

fn feasible_instance() -> impl Strategy<Value = Instance> {
    (1i64..4, proptest::collection::vec(dyadic_job(), 1..8)).prop_filter_map(
        "must be feasible",
        |(g, jobs)| {
            let inst = Instance::new(g, jobs).ok()?;
            inst.is_feasible_all_open().then_some(inst)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The full exact pipeline: verified schedule, no repair, 9/5 vs LP.
    #[test]
    fn prop_exact_pipeline_sound(inst in feasible_instance()) {
        let r = solve_nested(&inst, &SolverOptions::exact()).unwrap();
        r.schedule.verify(&inst).unwrap();
        prop_assert_eq!(r.stats.repair_opened, 0);
        prop_assert!(r.stats.opened_slots as f64 <= 1.8 * r.stats.lp_objective + 1e-9);
    }

    /// ALG within 1.8·OPT; LP ≤ OPT; greedy within 3·OPT.
    #[test]
    fn prop_bounds_vs_exact(inst in feasible_instance()) {
        let r = solve_nested(&inst, &SolverOptions::exact()).unwrap();
        let opt = nested_opt(&inst, r.stats.lp_objective.ceil() as i64)
            .unwrap()
            .active_time();
        prop_assert!(r.stats.active_slots as f64 <= 1.8 * opt as f64 + 1e-9);
        prop_assert!(r.stats.lp_objective <= opt as f64 + 1e-9);
        let g = minimal_feasible(&inst, ScanOrder::RightToLeft).unwrap();
        prop_assert!(g.schedule.active_time() <= 3 * opt);
        prop_assert!(g.schedule.active_time() >= opt);
    }

    /// Incremental greedy ≡ from-scratch greedy for every order.
    #[test]
    fn prop_incremental_greedy_equivalent(inst in feasible_instance(), seed in any::<u64>()) {
        for order in [ScanOrder::LeftToRight, ScanOrder::RightToLeft, ScanOrder::Shuffled(seed)] {
            let slow = minimal_feasible(&inst, order).unwrap();
            let fast = minimal_feasible_fast(&inst, order).unwrap();
            prop_assert_eq!(&slow.schedule.slots, &fast.schedule.slots);
        }
    }

    /// Float backend: verified schedules, LP agreement with exact.
    #[test]
    fn prop_float_backend_agrees(inst in feasible_instance()) {
        let e = solve_nested(&inst, &SolverOptions::exact()).unwrap();
        let f = solve_nested(&inst, &SolverOptions::float()).unwrap();
        f.schedule.verify(&inst).unwrap();
        prop_assert!((e.stats.lp_objective - f.stats.lp_objective).abs() < 1e-6);
    }

    /// Polish never worsens and keeps schedules valid.
    #[test]
    fn prop_polish_improves(inst in feasible_instance()) {
        let plain = solve_nested(&inst, &SolverOptions::exact()).unwrap();
        let polished = solve_nested(&inst, &SolverOptions::exact().polished()).unwrap();
        polished.schedule.verify(&inst).unwrap();
        prop_assert!(polished.stats.active_slots <= plain.stats.active_slots);
    }
}
